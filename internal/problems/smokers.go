package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

func init() {
	Register(Spec{
		Name:           "cigarette-smokers",
		Runner:         RunSmokers,
		DefaultThreads: 32,
		// The single-slot table makes the baseline's broadcast storms
		// quadratic (minutes per run at 32 threads), so it is dropped
		// from the presentation lineup as in Fig. 11–13; the
		// differential test still exercises it at small scale.
		Mechs:     NoBaseline,
		CheckDesc: "every dealt ingredient pair was smoked and the table is clear",
	})
}

// RunSmokers is Patil's cigarette smokers problem: an agent repeatedly
// places two of the three ingredients on the table, and only the smoker
// holding the third ingredient may take them. The table is modeled as a
// single slot holding 0 (empty) or the ingredient type 1..3 that the
// current deal is missing, so each smoker type waits on its own
// equivalence-taggable condition (table == s) while the agent waits for
// the table to clear — Parnas's restriction-free variant.
//
// threads is the number of smoker threads (at least 3, one per
// ingredient, assigned round-robin); totalOps is the number of deals the
// agent places. Ops counts cigarettes smoked; Check is deals − smoked
// (must be 0: every deal consumed, table empty).
func RunSmokers(mech Mechanism, threads, totalOps int) Result {
	if threads < 3 {
		threads = 3
	}
	switch mech {
	case Explicit:
		return runSmokersExplicit(threads, totalOps)
	case Baseline:
		return runSmokersBaseline(threads, totalOps)
	default:
		return runSmokersAuto(mech, threads, totalOps)
	}
}

// Shared state shape for all variants: table holds the smoker type that
// can complete the current deal (0 when empty) and done tells smokers the
// agent has left. The agent only sets done with the table clear, so
// table == 0 whenever done holds.

func runSmokersExplicit(threads, deals int) Result {
	m := core.NewExplicit()
	tableEmpty := m.NewCond() // the agent waits for the table to clear
	smokerReady := [3]*core.Cond{m.NewCond(), m.NewCond(), m.NewCond()}
	table := 0
	doneFlag := false
	var smoked int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() { // the agent
		defer wg.Done()
		for d := 0; d < deals; d++ {
			m.Enter()
			tableEmpty.Await(func() bool { return table == 0 })
			table = d%3 + 1
			smokerReady[table-1].Signal()
			m.Exit()
		}
		m.Enter()
		tableEmpty.Await(func() bool { return table == 0 })
		doneFlag = true
		for _, c := range smokerReady {
			c.Broadcast() // closing time for every smoker type
		}
		m.Exit()
	}()
	var sg sync.WaitGroup
	for s := 0; s < threads; s++ {
		sg.Add(1)
		go func(typ int) {
			defer sg.Done()
			for {
				m.Enter()
				smokerReady[typ-1].Await(func() bool { return table == typ || doneFlag })
				if table == typ {
					table = 0
					smoked++
					tableEmpty.Signal()
					m.Exit()
					continue
				}
				m.Exit()
				return
			}
		}(s%3 + 1)
	}
	sg.Wait()
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, smoked, int64(deals)-smoked)
}

func runSmokersBaseline(threads, deals int) Result {
	m := core.NewBaseline()
	table := 0
	doneFlag := false
	var smoked int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for d := 0; d < deals; d++ {
			m.Enter()
			m.Await(func() bool { return table == 0 })
			table = d%3 + 1
			m.Exit()
		}
		m.Enter()
		m.Await(func() bool { return table == 0 })
		doneFlag = true
		m.Exit()
	}()
	var sg sync.WaitGroup
	for s := 0; s < threads; s++ {
		sg.Add(1)
		go func(typ int) {
			defer sg.Done()
			for {
				m.Enter()
				m.Await(func() bool { return table == typ || doneFlag })
				if table == typ {
					table = 0
					smoked++
					m.Exit()
					continue
				}
				m.Exit()
				return
			}
		}(s%3 + 1)
	}
	sg.Wait()
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, smoked, int64(deals)-smoked)
}

func runSmokersAuto(mech Mechanism, threads, deals int) Result {
	m := newAuto(mech)
	table := m.NewInt("table", 0)
	done := m.NewBool("done", false)
	tableClear := m.MustCompile("table == 0")
	myIngredients := m.MustCompile("table == typ || done")
	var smoked int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for d := 0; d < deals; d++ {
			m.Enter()
			await(tableClear)
			table.Set(int64(d%3) + 1)
			m.Exit()
		}
		m.Enter()
		await(tableClear)
		done.Set(true)
		m.Exit()
	}()
	var sg sync.WaitGroup
	for s := 0; s < threads; s++ {
		sg.Add(1)
		go func(typ int64) {
			defer sg.Done()
			for {
				m.Enter()
				await(myIngredients, core.BindInt("typ", typ))
				if table.Get() == typ {
					table.Set(0)
					smoked++
					m.Exit()
					continue
				}
				m.Exit()
				return
			}
		}(int64(s%3) + 1)
	}
	sg.Wait()
	wg.Wait()
	elapsed := time.Since(start)
	return finish(mech, m, elapsed, smoked, int64(deals)-smoked)
}
