package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// DefaultBarberChairs is the number of waiting chairs in the Fig. 10
// workload.
const DefaultBarberChairs = 8

func init() {
	Register(Spec{
		Name:           "sleeping-barber",
		Runner:         RunBarber,
		DefaultThreads: 32,
		CheckDesc:      "haircuts + balked visits equal attempted visits",
		Figure:         "fig10",
		OpsVary:        true, // haircuts vs. balks depend on scheduling
	})
}

// RunBarber is the sleeping barber problem (§6.3.1, Fig. 10): one barber,
// a bounded waiting room, customers that leave when no chair is free.
// threads is the number of customer threads; totalOps the number of shop
// visits attempted across all customers. Ops counts haircuts given; Check
// is haircuts + balked visits − attempted visits (must be 0).
func RunBarber(mech Mechanism, threads, totalOps int) Result {
	return RunBarberChairs(mech, threads, totalOps, DefaultBarberChairs)
}

// RunBarberChairs is RunBarber with an explicit chair count.
func RunBarberChairs(mech Mechanism, customers, totalOps, chairs int) Result {
	visits := split(totalOps, customers)
	switch mech {
	case Explicit:
		return runBarberExplicit(customers, visits, chairs)
	case Baseline:
		return runBarberBaseline(customers, visits, chairs)
	default:
		return runBarberAuto(mech, customers, visits, chairs)
	}
}

// Shared state shape for all variants: waiting is the number of customers
// in chairs, cuts the number of finished haircuts not yet collected by
// their (fungible) customers, stop tells the barber to go home.

func runBarberExplicit(customers int, visits []int, chairs int) Result {
	m := core.NewExplicit()
	customerArrived := m.NewCond() // barber waits for customers (or closing time)
	cutReady := m.NewCond()        // waiting customers wait for a finished cut
	waiting, cuts := 0, 0
	stop := false
	var haircuts, balked int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() { // the barber
		defer wg.Done()
		for {
			m.Enter()
			customerArrived.Await(func() bool { return waiting > 0 || stop })
			if waiting == 0 && stop {
				m.Exit()
				return
			}
			waiting--
			cuts++
			haircuts++
			cutReady.Signal()
			m.Exit()
		}
	}()
	var cwg sync.WaitGroup
	for c := 0; c < customers; c++ {
		cwg.Add(1)
		go func(n int) {
			defer cwg.Done()
			for i := 0; i < n; i++ {
				m.Enter()
				if waiting == chairs {
					balkedUnderLock(&balked)
					m.Exit()
					continue
				}
				waiting++
				customerArrived.Signal()
				cutReady.Await(func() bool { return cuts > 0 })
				cuts--
				m.Exit()
			}
		}(visits[c])
	}
	cwg.Wait()
	m.Enter()
	stop = true
	customerArrived.Signal()
	m.Exit()
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, haircuts, haircuts+balked-opsSum(visits))
}

func runBarberBaseline(customers int, visits []int, chairs int) Result {
	m := core.NewBaseline()
	waiting, cuts := 0, 0
	stop := false
	var haircuts, balked int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			m.Enter()
			m.Await(func() bool { return waiting > 0 || stop })
			if waiting == 0 && stop {
				m.Exit()
				return
			}
			waiting--
			cuts++
			haircuts++
			m.Exit()
		}
	}()
	var cwg sync.WaitGroup
	for c := 0; c < customers; c++ {
		cwg.Add(1)
		go func(n int) {
			defer cwg.Done()
			for i := 0; i < n; i++ {
				m.Enter()
				if waiting == chairs {
					balkedUnderLock(&balked)
					m.Exit()
					continue
				}
				waiting++
				m.Await(func() bool { return cuts > 0 })
				cuts--
				m.Exit()
			}
		}(visits[c])
	}
	cwg.Wait()
	m.Do(func() { stop = true })
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, haircuts, haircuts+balked-opsSum(visits))
}

func runBarberAuto(mech Mechanism, customers int, visits []int, chairs int) Result {
	m := newAuto(mech)
	waiting := m.NewInt("waiting", 0)
	cuts := m.NewInt("cuts", 0)
	stop := m.NewBool("stop", false)
	customerReady := m.MustCompile("waiting > 0 || stop")
	cutReady := m.MustCompile("cuts > 0")
	var haircuts, balked int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			m.Enter()
			await(customerReady)
			if waiting.Get() == 0 && stop.Get() {
				m.Exit()
				return
			}
			waiting.Add(-1)
			cuts.Add(1)
			haircuts++
			m.Exit()
		}
	}()
	var cwg sync.WaitGroup
	for c := 0; c < customers; c++ {
		cwg.Add(1)
		go func(n int) {
			defer cwg.Done()
			for i := 0; i < n; i++ {
				m.Enter()
				if waiting.Get() == int64(chairs) {
					balkedUnderLock(&balked)
					m.Exit()
					continue
				}
				waiting.Add(1)
				await(cutReady)
				cuts.Add(-1)
				m.Exit()
			}
		}(visits[c])
	}
	cwg.Wait()
	m.Do(func() { stop.Set(true) })
	wg.Wait()
	elapsed := time.Since(start)
	return finish(mech, m, elapsed, haircuts, haircuts+balked-opsSum(visits))
}

// balkedUnderLock increments the balk counter; callers hold the monitor.
func balkedUnderLock(balked *int64) { *balked++ }
