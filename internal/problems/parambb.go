package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// Parameters of the Fig. 14/15 workload: one producer putting a random
// 1..MaxBatch items per call, N consumers each taking a random 1..MaxBatch
// items per call, buffer capacity ParamBufferCap.
//
// The capacity must be at least 2·MaxBatch for liveness: whenever the
// producer is blocked, count > cap − MaxBatch ≥ MaxBatch, so every
// consumer's demand is satisfiable and the system cannot wedge with the
// producer and all consumers waiting on each other.
const (
	MaxBatch       = 128
	ParamBufferCap = 2 * MaxBatch
)

func init() {
	Register(Spec{
		Name:           "parameterized-buffer",
		Runner:         RunParamBoundedBuffer,
		DefaultThreads: 32,
		Mechs:          HeadToHead,
		CheckDesc:      "items produced equal items consumed plus final occupancy",
		Figure:         "fig14",
	})
}

// RunParamBoundedBuffer is the parameterized bounded-buffer problem of
// Fig. 1 and §6.3.3 — the workload where the explicit-signal mechanism
// must resort to signalAll, because nobody knows which waiting consumer's
// batch size is satisfiable. One producer keeps putting random batches
// until every consumer finishes; threads is the number of consumers;
// totalOps the total number of take operations. Ops counts takes; Check
// is items produced − items consumed − final occupancy (must be 0).
//
// Only the explicit and AutoSynch mechanisms appear in Fig. 14/15; this
// runner also supports the other two for completeness.
func RunParamBoundedBuffer(mech Mechanism, threads, totalOps int) Result {
	takes := split(totalOps, threads)
	switch mech {
	case Explicit:
		return runPBBExplicit(threads, takes)
	case Baseline:
		return runPBBBaseline(threads, takes)
	default:
		return runPBBAuto(mech, threads, takes)
	}
}

func runPBBExplicit(consumers int, takes []int) Result {
	m := core.NewExplicit()
	insufficientSpace := m.NewCond()
	insufficientItem := m.NewCond()
	count := 0
	stop := false
	var produced, consumed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() { // the producer
		defer wg.Done()
		rng := newRand(1)
		for {
			k := int(rng.intn(MaxBatch))
			m.Enter()
			insufficientSpace.Await(func() bool { return count+k <= ParamBufferCap || stop })
			if stop {
				m.Exit()
				return
			}
			count += k
			produced += int64(k)
			// Which consumers can proceed depends on their private batch
			// sizes: the explicit version must wake them all (§3).
			insufficientItem.Broadcast()
			m.Exit()
		}
	}()
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c, ops int) {
			defer cwg.Done()
			rng := newRand(uint64(c) + 2)
			for i := 0; i < ops; i++ {
				num := int(rng.intn(MaxBatch))
				m.Enter()
				insufficientItem.Await(func() bool { return count >= num })
				count -= num
				consumed += int64(num)
				insufficientSpace.Broadcast()
				m.Exit()
			}
		}(c, takes[c])
	}
	cwg.Wait()
	m.Enter()
	stop = true
	insufficientSpace.Broadcast()
	m.Exit()
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, opsSum(takes), produced-consumed-int64(count))
}

func runPBBBaseline(consumers int, takes []int) Result {
	m := core.NewBaseline()
	count := 0
	stop := false
	var produced, consumed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := newRand(1)
		for {
			k := int(rng.intn(MaxBatch))
			m.Enter()
			m.Await(func() bool { return count+k <= ParamBufferCap || stop })
			if stop {
				m.Exit()
				return
			}
			count += k
			produced += int64(k)
			m.Exit()
		}
	}()
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c, ops int) {
			defer cwg.Done()
			rng := newRand(uint64(c) + 2)
			for i := 0; i < ops; i++ {
				num := int(rng.intn(MaxBatch))
				m.Enter()
				m.Await(func() bool { return count >= num })
				count -= num
				consumed += int64(num)
				m.Exit()
			}
		}(c, takes[c])
	}
	cwg.Wait()
	m.Do(func() { stop = true })
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, opsSum(takes), produced-consumed-int64(count))
}

func runPBBAuto(mech Mechanism, consumers int, takes []int) Result {
	m := newAuto(mech)
	count := m.NewInt("count", 0)
	m.NewInt("cap", ParamBufferCap)
	stop := m.NewBool("stop", false)
	hasRoom := m.MustCompile("count + k <= cap || stop")
	hasItems := m.MustCompile("count >= num")
	var produced, consumed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := newRand(1)
		for {
			k := rng.intn(MaxBatch)
			m.Enter()
			await(hasRoom, core.BindInt("k", k))
			if stop.Get() {
				m.Exit()
				return
			}
			count.Add(k)
			produced += k
			m.Exit()
		}
	}()
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c, ops int) {
			defer cwg.Done()
			rng := newRand(uint64(c) + 2)
			for i := 0; i < ops; i++ {
				num := rng.intn(MaxBatch)
				m.Enter()
				await(hasItems, core.BindInt("num", num))
				count.Add(-num)
				consumed += num
				m.Exit()
			}
		}(c, takes[c])
	}
	cwg.Wait()
	m.Do(func() { stop.Set(true) })
	wg.Wait()
	elapsed := time.Since(start)
	var final int64
	m.Do(func() { final = count.Get() })
	return finish(mech, m, elapsed, opsSum(takes), produced-consumed-final)
}
