package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

func init() {
	Register(Spec{
		Name:           "priority-scheduler",
		Runner:         RunPriorityScheduler,
		DefaultThreads: 16,
		CheckDesc:      "every submitted job executed exactly once despite preemption requeues",
	})
}

// RunPriorityScheduler is a two-class job scheduler with cooperative
// preemption: submitters enqueue high- and low-priority jobs, workers
// take whatever is runnable ("high >= 1 || low >= 1 || done") preferring
// the high class, and a worker holding a low-priority job re-enters the
// scheduler at its preemption point — if a high-priority job has arrived
// meanwhile, the worker requeues its low job (a preemption) and serves
// the high one first. Preempted jobs are requeued, not lost, so the
// conservation check is exact however many times a job bounces.
//
// threads splits into submitters (a quarter, at least one) and workers
// (the rest); totalOps jobs are submitted in total, alternating classes.
// Ops counts executed jobs; Check is (executed − submitted) plus both
// queue residues (all must be 0).
func RunPriorityScheduler(mech Mechanism, threads, totalOps int) Result {
	if threads < 2 {
		threads = 2
	}
	submitters := threads / 4
	if submitters == 0 {
		submitters = 1
	}
	workers := threads - submitters
	subOps := split(totalOps, submitters)
	switch mech {
	case Explicit:
		return runPrioExplicit(subOps, workers)
	case Baseline:
		return runPrioBaseline(subOps, workers)
	default:
		return runPrioAuto(mech, subOps, workers)
	}
}

func runPrioAuto(mech Mechanism, subOps []int, workers int) Result {
	m := newAuto(mech)
	high := m.NewInt("high", 0)
	low := m.NewInt("low", 0)
	done := m.NewBool("done", false)
	runnable := m.MustCompile("high >= 1 || low >= 1 || done")
	executed := make([]int64, workers)

	var swg, wwg sync.WaitGroup
	start := time.Now()
	for i := range subOps {
		swg.Add(1)
		go func(i, n int) {
			defer swg.Done()
			for j := 0; j < n; j++ {
				m.Enter()
				if j%2 == 0 {
					high.Add(1)
				} else {
					low.Add(1)
				}
				m.Exit()
			}
		}(i, subOps[i])
	}
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for {
				m.Enter()
				await(runnable)
				var kind int // 0 none, 1 low, 2 high
				if high.Get() >= 1 {
					high.Add(-1)
					kind = 2
				} else if low.Get() >= 1 {
					low.Add(-1)
					kind = 1
				}
				m.Exit()
				if kind == 0 {
					return // done, both queues empty
				}
				if kind == 1 {
					// Preemption point of the low-priority job: a high
					// arrival takes the worker, the low job goes back.
					m.Enter()
					if high.Get() >= 1 {
						high.Add(-1)
						low.Add(1)
						m.Exit()
						executed[w]++ // the high job runs to completion
						continue
					}
					m.Exit()
				}
				executed[w]++
			}
		}(w)
	}
	swg.Wait()
	m.Do(func() { done.Set(true) })
	wwg.Wait()
	elapsed := time.Since(start)

	var submitted, hres, lres int64
	for _, n := range subOps {
		submitted += int64(n)
	}
	m.Do(func() { hres, lres = high.Get(), low.Get() })
	var ran int64
	for _, e := range executed {
		ran += e
	}
	return finish(mech, m, elapsed, ran, (ran-submitted)+hres+lres)
}

func runPrioExplicit(subOps []int, workers int) Result {
	m := core.NewExplicit()
	work := m.NewCond()
	var high, low int64
	var done bool
	executed := make([]int64, workers)

	var swg, wwg sync.WaitGroup
	start := time.Now()
	for i := range subOps {
		swg.Add(1)
		go func(n int) {
			defer swg.Done()
			for j := 0; j < n; j++ {
				m.Enter()
				if j%2 == 0 {
					high++
				} else {
					low++
				}
				work.Signal()
				m.Exit()
			}
		}(subOps[i])
	}
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for {
				m.Enter()
				work.Await(func() bool { return high >= 1 || low >= 1 || done })
				var kind int
				if high >= 1 {
					high--
					kind = 2
				} else if low >= 1 {
					low--
					kind = 1
				}
				m.Exit()
				if kind == 0 {
					return
				}
				if kind == 1 {
					m.Enter()
					if high >= 1 {
						high--
						low++
						work.Signal() // the requeued low job is runnable again
						m.Exit()
						executed[w]++
						continue
					}
					m.Exit()
				}
				executed[w]++
			}
		}(w)
	}
	swg.Wait()
	m.Enter()
	done = true
	work.Broadcast()
	m.Exit()
	wwg.Wait()
	elapsed := time.Since(start)

	var submitted int64
	for _, n := range subOps {
		submitted += int64(n)
	}
	var ran int64
	for _, e := range executed {
		ran += e
	}
	return finish(Explicit, m, elapsed, ran, (ran-submitted)+high+low)
}

func runPrioBaseline(subOps []int, workers int) Result {
	m := core.NewBaseline()
	var high, low int64
	var done bool
	executed := make([]int64, workers)

	var swg, wwg sync.WaitGroup
	start := time.Now()
	for i := range subOps {
		swg.Add(1)
		go func(n int) {
			defer swg.Done()
			for j := 0; j < n; j++ {
				m.Enter()
				if j%2 == 0 {
					high++
				} else {
					low++
				}
				m.Exit()
			}
		}(subOps[i])
	}
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for {
				m.Enter()
				m.Await(func() bool { return high >= 1 || low >= 1 || done })
				var kind int
				if high >= 1 {
					high--
					kind = 2
				} else if low >= 1 {
					low--
					kind = 1
				}
				m.Exit()
				if kind == 0 {
					return
				}
				if kind == 1 {
					m.Enter()
					if high >= 1 {
						high--
						low++
						m.Exit()
						executed[w]++
						continue
					}
					m.Exit()
				}
				executed[w]++
			}
		}(w)
	}
	swg.Wait()
	m.Do(func() { done = true })
	wwg.Wait()
	elapsed := time.Since(start)

	var submitted int64
	for _, n := range subOps {
		submitted += int64(n)
	}
	var ran int64
	for _, e := range executed {
		ran += e
	}
	return finish(Baseline, m, elapsed, ran, (ran-submitted)+high+low)
}
