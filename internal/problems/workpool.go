package problems

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

func init() {
	Register(Spec{
		Name:           "work-stealing-pool",
		Runner:         RunWorkPool,
		DefaultThreads: 64,
		CheckDesc:      "every submitted task executed exactly once, queues drained",
		Sharded:        true,
	})
}

// RunWorkPool is a work-stealing task pool striped across ShardCount()
// partitions: producers submit unit tasks to rotating shards, workers
// take from their home shard when they can and sweep the other shards —
// stealing — before ever parking. A worker that finds every queue empty
// parks shard-locally: it arms a wait handle on its home shard's
// "tasks >= 1 || done" predicate, then pokes the aggregate's epoch so the
// rebalance supervisor learns a queue went deep (arm first, then poke —
// the supervisor either sees the registration or is woken after it, so
// the park cannot be lost). The supervisor, parked on the epoch-fenced
// summary, moves queued tasks to starved shards — shards with parked
// waiters and an empty queue — whenever the aggregate changes; the move
// itself is silent (it does not change the total), and the deposit's own
// monitor exit relays to the parked handle.
//
// A Counter with threshold 1 tracks total queued tasks, so every submit
// and take publishes: the supervisor wakes on each, and the driver's
// drain wait (total ≤ 0) fires exactly when all submitted work is done.
//
// threads splits into producers (a quarter, at least one) and workers
// (the rest); totalOps tasks are submitted in total. Ops counts tasks
// executed; Check is executed-minus-submitted plus any queue residue and
// the flushed aggregate (all must be zero).
func RunWorkPool(mech Mechanism, threads, totalOps int) Result {
	return runWorkPoolShards(mech, threads, totalOps, ShardCount())
}

func runWorkPoolShards(mech Mechanism, threads, totalOps, shards int) Result {
	producers := threads / 4
	if producers == 0 {
		producers = 1
	}
	workers := threads - producers
	if workers == 0 {
		workers = 1
	}
	prodOps := split(totalOps, producers)
	switch mech {
	case Explicit:
		return runPoolExplicit(producers, workers, prodOps, shards)
	case Baseline:
		return runPoolBaseline(producers, workers, prodOps, shards)
	default:
		return runPoolAuto(mech, producers, workers, prodOps, shards)
	}
}

func runPoolAuto(mech Mechanism, producers, workers int, prodOps []int, shards int) Result {
	tasks := make([]*core.IntCell, shards)
	done := make([]*core.BoolCell, shards)
	sm := shard.New(shards,
		shard.WithMonitorOptions(autoOpts(mech)...),
		shard.WithSetup(func(s int, m *core.Monitor) {
			tasks[s] = m.NewInt("tasks", 0)
			done[s] = m.NewBool("done", false)
		}))
	ready := sm.MustCompile("tasks >= 1 || done")
	cnt := sm.NewCounter("queued", 1)
	sum := cnt.Summary()
	sdone := sum.NewInt("sdone", 0)
	advanced := sum.MustCompile("ep > e || sdone == 1")

	// The rebalance supervisor: woken by every publication (and by worker
	// pokes), it moves queued tasks onto starved shards — parked waiters,
	// empty queue. Moves are silent in the aggregate; the deposit's exit
	// relays to the shard's parked handles.
	rebalance := func() {
		depths := sm.WaitingByShard()
		counts := make([]int64, shards)
		for s := 0; s < shards; s++ {
			s := s
			sm.DoShard(s, func(*core.Monitor) { counts[s] = tasks[s].Get() })
		}
		for a := 0; a < shards; a++ {
			if depths[a] == 0 || counts[a] > 0 {
				continue
			}
			for b := 0; b < shards; b++ {
				if b == a || counts[b] == 0 {
					continue
				}
				var moved int64
				sm.DoShard(b, func(*core.Monitor) {
					moved = tasks[b].Get()
					if moved > int64(depths[a]) {
						moved = int64(depths[a])
					}
					tasks[b].Add(-moved)
				})
				if moved > 0 {
					sm.DoShard(a, func(*core.Monitor) { tasks[a].Add(moved) })
					counts[a] += moved
					counts[b] -= moved
					break
				}
			}
		}
	}
	svDone := make(chan struct{})
	go func() {
		defer close(svDone)
		for {
			e := cnt.Epoch()
			rebalance()
			sum.Enter()
			await(advanced, core.BindInt("e", e))
			stop := sdone.Get() == 1
			sum.Exit()
			if stop {
				return
			}
		}
	}()

	executed := make([]int64, workers)
	var pwg, wwg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p, n int) {
			defer pwg.Done()
			for j := 0; j < n; j++ {
				kk := uint64(j*producers + p)
				sm.Do(kk, func(*core.Monitor) {
					s := sm.Index(kk)
					tasks[s].Add(1)
					cnt.Add(s, 1)
				})
			}
		}(p, prodOps[p])
	}
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			hk := uint64(w)
			home := sm.Index(hk)
			for {
				if _, ok := sm.TrySteal(home, func(_ *core.Monitor, s int) bool {
					if tasks[s].Get() >= 1 {
						tasks[s].Add(-1)
						cnt.Add(s, -1)
						return true
					}
					return false
				}); ok {
					executed[w]++
					continue
				}
				// Nothing anywhere: park shard-locally on the compiled
				// per-shard predicate, advertised to the supervisor.
				h := sm.Arm(hk, ready)
				cnt.Poke()
				for {
					<-h.Ready()
					err := h.Claim()
					if err == nil {
						break
					}
					if err != core.ErrNotReady {
						panic(err)
					}
				}
				// Claim succeeded: home shard held, predicate true.
				took := false
				if tasks[home].Get() >= 1 {
					tasks[home].Add(-1)
					cnt.Add(home, -1)
					took = true
				}
				finished := !took && done[home].Get()
				sm.Shard(home).Exit()
				if took {
					executed[w]++
					continue
				}
				if finished {
					return
				}
			}
		}(w)
	}
	pwg.Wait()
	if err := cnt.AwaitAtMost(0); err != nil {
		panic(err)
	}
	sum.Do(func() { sdone.Set(1) })
	for s := 0; s < shards; s++ {
		s := s
		sm.DoShard(s, func(*core.Monitor) { done[s].Set(true) })
	}
	wwg.Wait()
	<-svDone
	elapsed := time.Since(start)

	var submitted, ran, residue int64
	for _, n := range prodOps {
		submitted += int64(n)
	}
	for _, e := range executed {
		ran += e
	}
	for s := 0; s < shards; s++ {
		s := s
		sm.DoShard(s, func(*core.Monitor) { residue += tasks[s].Get() })
	}
	check := (ran - submitted) + residue
	if check == 0 {
		check = cnt.Total()
	}
	return Result{Mechanism: mech, Elapsed: elapsed,
		Stats: sm.Stats().Add(sum.Stats()), Ops: ran, Check: check,
		Latency: mergeLatency(sm.WaitLatency(), sum.WaitLatency())}
}

// runPoolExplicit is the hand-striped explicit-signal pool: one condition
// per stripe for its queue, a summary monitor whose change condition the
// supervisor and the drain wait park on, and every mutation published and
// signaled by hand (no batching — precise publication is the explicit
// discipline). Workers park with Cond.Arm handles so the arm-then-poke
// advertisement works exactly as in the automatic variant.
func runPoolExplicit(producers, workers int, prodOps []int, shards int) Result {
	stripes := make([]*core.Explicit, shards)
	tcond := make([]*core.Cond, shards)
	tasks := make([]int64, shards)
	done := make([]bool, shards)
	for s := range stripes {
		stripes[s] = core.NewExplicit()
		tcond[s] = stripes[s].NewCond()
	}
	summary := core.NewExplicit()
	chCond := summary.NewCond()
	var total, ep, sdone int64

	// publish folds a queue delta into the summary while the stripe is
	// held (stripe → summary lock order, as Counter.Add).
	publish := func(d int64) {
		summary.Enter()
		total += d
		ep++
		chCond.Broadcast()
		summary.Exit()
	}
	poke := func() {
		summary.Enter()
		ep++
		chCond.Broadcast()
		summary.Exit()
	}

	waitingAt := func(s int) int { return stripes[s].Waiting() }
	rebalance := func() {
		counts := make([]int64, shards)
		depths := make([]int, shards)
		for s := 0; s < shards; s++ {
			depths[s] = waitingAt(s)
			stripes[s].Enter()
			counts[s] = tasks[s]
			stripes[s].Exit()
		}
		for a := 0; a < shards; a++ {
			if depths[a] == 0 || counts[a] > 0 {
				continue
			}
			for b := 0; b < shards; b++ {
				if b == a || counts[b] == 0 {
					continue
				}
				var moved int64
				stripes[b].Enter()
				moved = tasks[b]
				if moved > int64(depths[a]) {
					moved = int64(depths[a])
				}
				tasks[b] -= moved
				stripes[b].Exit()
				if moved > 0 {
					stripes[a].Enter()
					tasks[a] += moved
					tcond[a].Broadcast()
					stripes[a].Exit()
					counts[a] += moved
					counts[b] -= moved
					break
				}
			}
		}
	}
	svDone := make(chan struct{})
	go func() {
		defer close(svDone)
		for {
			summary.Enter()
			e := ep
			summary.Exit()
			rebalance()
			summary.Enter()
			chCond.Await(func() bool { return ep > e || sdone == 1 })
			stop := sdone == 1
			summary.Exit()
			if stop {
				return
			}
		}
	}()

	executed := make([]int64, workers)
	var pwg, wwg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p, n int) {
			defer pwg.Done()
			for j := 0; j < n; j++ {
				s := shard.IndexFor(uint64(j*producers+p), shards)
				stripes[s].Enter()
				tasks[s]++
				tcond[s].Signal()
				publish(1)
				stripes[s].Exit()
			}
		}(p, prodOps[p])
	}
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			home := shard.IndexFor(uint64(w), shards)
			for {
				took := false
				for off := 0; off < shards; off++ {
					s := (home + off) % shards
					stripes[s].Enter()
					if tasks[s] >= 1 {
						tasks[s]--
						publish(-1)
						took = true
					}
					stripes[s].Exit()
					if took {
						break
					}
				}
				if took {
					executed[w]++
					continue
				}
				h := tcond[home].Arm(func() bool { return tasks[home] >= 1 || done[home] })
				poke()
				for {
					<-h.Ready()
					err := h.Claim()
					if err == nil {
						break
					}
					if err != core.ErrNotReady {
						panic(err)
					}
				}
				if tasks[home] >= 1 {
					tasks[home]--
					publish(-1)
					took = true
				}
				finished := !took && done[home]
				stripes[home].Exit()
				if took {
					executed[w]++
					continue
				}
				if finished {
					return
				}
			}
		}(w)
	}
	pwg.Wait()
	summary.Enter()
	chCond.Await(func() bool { return total <= 0 })
	summary.Exit()
	summary.Enter()
	sdone = 1
	chCond.Broadcast()
	summary.Exit()
	for s := 0; s < shards; s++ {
		stripes[s].Enter()
		done[s] = true
		tcond[s].Broadcast()
		stripes[s].Exit()
	}
	wwg.Wait()
	<-svDone
	elapsed := time.Since(start)

	var submitted, ran, residue int64
	for _, n := range prodOps {
		submitted += int64(n)
	}
	for _, e := range executed {
		ran += e
	}
	ms := make([]core.Mechanism, 0, shards+1)
	for s := range stripes {
		stripes[s].Enter()
		residue += tasks[s]
		stripes[s].Exit()
		ms = append(ms, stripes[s])
	}
	ms = append(ms, summary)
	return Result{Mechanism: Explicit, Elapsed: elapsed, Stats: stripeStats(ms...),
		Ops: ran, Check: (ran - submitted) + residue, Latency: stripeLatency(ms...)}
}

// runPoolBaseline stripes the pool across baseline monitors: closure
// waits, a broadcast on every exit, armed handles notified by the same
// broadcasts. The protocol is identical; only the signaling is the
// strawman's.
func runPoolBaseline(producers, workers int, prodOps []int, shards int) Result {
	stripes := make([]*core.Baseline, shards)
	tasks := make([]int64, shards)
	done := make([]bool, shards)
	for s := range stripes {
		stripes[s] = core.NewBaseline()
	}
	summary := core.NewBaseline()
	var total, ep, sdone int64

	publish := func(d int64) {
		summary.Enter()
		total += d
		ep++
		summary.Exit()
	}
	poke := func() {
		summary.Enter()
		ep++
		summary.Exit()
	}

	rebalance := func() {
		counts := make([]int64, shards)
		depths := make([]int, shards)
		for s := 0; s < shards; s++ {
			depths[s] = stripes[s].Waiting()
			stripes[s].Enter()
			counts[s] = tasks[s]
			stripes[s].Exit()
		}
		for a := 0; a < shards; a++ {
			if depths[a] == 0 || counts[a] > 0 {
				continue
			}
			for b := 0; b < shards; b++ {
				if b == a || counts[b] == 0 {
					continue
				}
				var moved int64
				stripes[b].Enter()
				moved = tasks[b]
				if moved > int64(depths[a]) {
					moved = int64(depths[a])
				}
				tasks[b] -= moved
				stripes[b].Exit()
				if moved > 0 {
					stripes[a].Enter()
					tasks[a] += moved
					stripes[a].Exit()
					counts[a] += moved
					counts[b] -= moved
					break
				}
			}
		}
	}
	svDone := make(chan struct{})
	go func() {
		defer close(svDone)
		for {
			summary.Enter()
			e := ep
			summary.Exit()
			rebalance()
			summary.Enter()
			summary.Await(func() bool { return ep > e || sdone == 1 })
			stop := sdone == 1
			summary.Exit()
			if stop {
				return
			}
		}
	}()

	executed := make([]int64, workers)
	var pwg, wwg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p, n int) {
			defer pwg.Done()
			for j := 0; j < n; j++ {
				s := shard.IndexFor(uint64(j*producers+p), shards)
				stripes[s].Enter()
				tasks[s]++
				publish(1)
				stripes[s].Exit()
			}
		}(p, prodOps[p])
	}
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			home := shard.IndexFor(uint64(w), shards)
			for {
				took := false
				for off := 0; off < shards; off++ {
					s := (home + off) % shards
					stripes[s].Enter()
					if tasks[s] >= 1 {
						tasks[s]--
						publish(-1)
						took = true
					}
					stripes[s].Exit()
					if took {
						break
					}
				}
				if took {
					executed[w]++
					continue
				}
				h := stripes[home].ArmFunc(func() bool { return tasks[home] >= 1 || done[home] })
				poke()
				for {
					<-h.Ready()
					err := h.Claim()
					if err == nil {
						break
					}
					if err != core.ErrNotReady {
						panic(err)
					}
				}
				if tasks[home] >= 1 {
					tasks[home]--
					publish(-1)
					took = true
				}
				finished := !took && done[home]
				stripes[home].Exit()
				if took {
					executed[w]++
					continue
				}
				if finished {
					return
				}
			}
		}(w)
	}
	pwg.Wait()
	summary.Enter()
	summary.Await(func() bool { return total <= 0 })
	summary.Exit()
	summary.Enter()
	sdone = 1
	summary.Exit()
	for s := 0; s < shards; s++ {
		stripes[s].Enter()
		done[s] = true
		stripes[s].Exit()
	}
	wwg.Wait()
	<-svDone
	elapsed := time.Since(start)

	var submitted, ran, residue int64
	for _, n := range prodOps {
		submitted += int64(n)
	}
	for _, e := range executed {
		ran += e
	}
	ms := make([]core.Mechanism, 0, shards+1)
	for s := range stripes {
		stripes[s].Enter()
		residue += tasks[s]
		stripes[s].Exit()
		ms = append(ms, stripes[s])
	}
	ms = append(ms, summary)
	return Result{Mechanism: Baseline, Elapsed: elapsed, Stats: stripeStats(ms...),
		Ops: ran, Check: (ran - submitted) + residue, Latency: stripeLatency(ms...)}
}
