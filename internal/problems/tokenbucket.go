package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// Parameters of the token-bucket rate limiter: a bucket of BucketCap
// tokens refilled in batches of at most RefillBatch by a dedicated
// refiller thread. RefillBatch ≤ BucketCap keeps every refill
// satisfiable, so the workload cannot wedge.
const (
	BucketCap   = 32
	RefillBatch = 8
)

func init() {
	Register(Spec{
		Name:           "token-bucket",
		Runner:         RunTokenBucket,
		DefaultThreads: 16,
		CheckDesc:      "every minted token granted exactly once, bucket drained",
	})
}

// RunTokenBucket is a token-bucket rate limiter: a refiller mints tokens
// in batches, parking on bucket space ("tokens + b <= cap" — the batch
// size is thread-local, so the explicit version must broadcast), while
// client threads each take one token per operation ("tokens >= 1" — the
// §4.3 threshold shape, pruned by the min-heap over tokens). The refiller
// mints exactly totalOps tokens in total and the clients consume exactly
// totalOps, so at the end the bucket must be empty: conservation is
// granted − minted plus the residue.
//
// threads is the number of client threads (the refiller rides on top);
// totalOps is the total number of grants. Ops counts grants; Check is
// (granted − minted) + residual tokens (must be 0).
func RunTokenBucket(mech Mechanism, threads, totalOps int) Result {
	if threads < 1 {
		threads = 1
	}
	ops := split(totalOps, threads)
	switch mech {
	case Explicit:
		return runBucketExplicit(ops, totalOps)
	case Baseline:
		return runBucketBaseline(ops, totalOps)
	default:
		return runBucketAuto(mech, ops, totalOps)
	}
}

func runBucketExplicit(ops []int, total int) Result {
	m := core.NewExplicit()
	spaceCond := m.NewCond() // refiller waits for batch room
	grantCond := m.NewCond() // clients wait for a token
	var tokens, minted, granted int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() { // refiller
		defer wg.Done()
		rng := newRand(0xb0cce7)
		for minted < int64(total) {
			b := rng.intn(RefillBatch)
			if rest := int64(total) - minted; b > rest {
				b = rest
			}
			m.Enter()
			spaceCond.Await(func() bool { return tokens+b <= BucketCap })
			tokens += b
			minted += b
			// Batch sizes and the clients' unit takes are different
			// predicates: wake the whole grant side.
			grantCond.Broadcast()
			m.Exit()
		}
	}()
	for i := range ops {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for op := 0; op < n; op++ {
				m.Enter()
				grantCond.Await(func() bool { return tokens >= 1 })
				tokens--
				granted++
				spaceCond.Broadcast() // room for the refiller's next batch
				m.Exit()
			}
		}(ops[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, granted, (granted-minted)+tokens)
}

func runBucketBaseline(ops []int, total int) Result {
	m := core.NewBaseline()
	var tokens, minted, granted int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := newRand(0xb0cce7)
		for minted < int64(total) {
			b := rng.intn(RefillBatch)
			if rest := int64(total) - minted; b > rest {
				b = rest
			}
			m.Enter()
			m.Await(func() bool { return tokens+b <= BucketCap })
			tokens += b
			minted += b
			m.Exit()
		}
	}()
	for i := range ops {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for op := 0; op < n; op++ {
				m.Enter()
				m.Await(func() bool { return tokens >= 1 })
				tokens--
				granted++
				m.Exit()
			}
		}(ops[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, granted, (granted-minted)+tokens)
}

func runBucketAuto(mech Mechanism, ops []int, total int) Result {
	m := newAuto(mech)
	tokens := m.NewInt("tokens", 0)
	m.NewInt("cap", BucketCap)
	hasRoom := m.MustCompile("tokens + b <= cap")
	hasToken := m.MustCompile("tokens >= 1")
	var minted, granted int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := newRand(0xb0cce7)
		for minted < int64(total) {
			b := rng.intn(RefillBatch)
			if rest := int64(total) - minted; b > rest {
				b = rest
			}
			m.Enter()
			await(hasRoom, core.BindInt("b", b))
			tokens.Add(b)
			minted += b
			m.Exit()
		}
	}()
	for i := range ops {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for op := 0; op < n; op++ {
				m.Enter()
				await(hasToken)
				tokens.Add(-1)
				granted++
				m.Exit()
			}
		}(ops[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var residue int64
	m.Do(func() { residue = tokens.Get() })
	return finish(mech, m, elapsed, granted, (granted-minted)+residue)
}
