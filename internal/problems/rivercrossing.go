package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// BoatSeats is the capacity of the river-crossing boat.
const BoatSeats = 4

func init() {
	Register(Spec{
		Name:           "river-crossing",
		Runner:         RunRiverCrossing,
		DefaultThreads: 32,
		CheckDesc:      "every issued boarding pass consumed, no offers or passes leaked",
	})
}

// RunRiverCrossing is the river crossing problem: hackers and serfs share
// a four-seat boat, and a trip may carry four of one kind or two of each —
// never three against one. A boat thread (playing the oxygen role of the
// H2O pattern) waits for a legal combination of offers, converts them to
// boarding passes, and the passengers collect the passes; stragglers
// retract their unpaired offers at closing time, exactly as in RunH2O.
//
// threads is the number of passenger threads (at least 4, split evenly
// between hackers and serfs with at least two of each so a legal
// combination always remains formable); totalOps is the number of
// passengers to carry (rounded up to a multiple of BoatSeats). Ops counts
// passengers carried; Check verifies every pass was consumed and no
// offers leaked.
func RunRiverCrossing(mech Mechanism, threads, totalOps int) Result {
	if threads < BoatSeats {
		threads = BoatSeats
	}
	hackers := threads / 2
	if hackers < 2 {
		hackers = 2
	}
	serfs := threads - hackers
	if serfs < 2 {
		serfs = 2
	}
	for totalOps%BoatSeats != 0 {
		totalOps++
	}
	trips := totalOps / BoatSeats
	switch mech {
	case Explicit:
		return runRiverExplicit(hackers, serfs, trips)
	case Baseline:
		return runRiverBaseline(hackers, serfs, trips)
	default:
		return runRiverAuto(mech, hackers, serfs, trips)
	}
}

// Shared state shape for all variants: hOff/sOff are outstanding offers,
// hPass/sPass boarding passes issued by the boat and not yet collected,
// done set by the boat after the last trip. canSail is the legal-load
// condition over the offers.

func canSail(hOff, sOff int) bool {
	return (hOff >= 2 && sOff >= 2) || hOff >= BoatSeats || sOff >= BoatSeats
}

// loadBoat picks the crew for one trip, preferring the mixed load, and
// returns how many hackers and serfs board.
func loadBoat(hOff, sOff int) (h, s int) {
	if hOff >= 2 && sOff >= 2 {
		return 2, 2
	}
	if hOff >= BoatSeats {
		return BoatSeats, 0
	}
	return 0, BoatSeats
}

func runRiverExplicit(hackers, serfs, trips int) Result {
	m := core.NewExplicit()
	boatReady := m.NewCond() // the boat waits for a legal load
	hBoard := m.NewCond()    // hackers wait for a boarding pass
	sBoard := m.NewCond()
	hOff, sOff, hPass, sPass := 0, 0, 0, 0
	doneFlag := false
	var carried, consumed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() { // the boat
		defer wg.Done()
		for tr := 0; tr < trips; tr++ {
			m.Enter()
			boatReady.Await(func() bool { return canSail(hOff, sOff) })
			h, s := loadBoat(hOff, sOff)
			hOff -= h
			sOff -= s
			hPass += h
			sPass += s
			carried += int64(h + s)
			for i := 0; i < h; i++ {
				hBoard.Signal()
			}
			for i := 0; i < s; i++ {
				sBoard.Signal()
			}
			m.Exit()
		}
		m.Enter()
		doneFlag = true
		hBoard.Broadcast() // closing time: release every straggler
		sBoard.Broadcast()
		m.Exit()
	}()
	passenger := func(off, pass *int, board *core.Cond) {
		defer wg.Done()
		for {
			m.Enter()
			if doneFlag && *pass == 0 {
				m.Exit()
				return
			}
			*off++
			if canSail(hOff, sOff) {
				boatReady.Signal()
			}
			board.Await(func() bool { return *pass > 0 || doneFlag })
			if *pass > 0 {
				*pass--
				consumed++
				m.Exit()
				continue
			}
			*off-- // closing time: retract the unboarded offer
			m.Exit()
			return
		}
	}
	for i := 0; i < hackers; i++ {
		wg.Add(1)
		go passenger(&hOff, &hPass, hBoard)
	}
	for i := 0; i < serfs; i++ {
		wg.Add(1)
		go passenger(&sOff, &sPass, sBoard)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, carried, carried-consumed+int64(hOff+sOff+hPass+sPass))
}

func runRiverBaseline(hackers, serfs, trips int) Result {
	m := core.NewBaseline()
	hOff, sOff, hPass, sPass := 0, 0, 0, 0
	doneFlag := false
	var carried, consumed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for tr := 0; tr < trips; tr++ {
			m.Enter()
			m.Await(func() bool { return canSail(hOff, sOff) })
			h, s := loadBoat(hOff, sOff)
			hOff -= h
			sOff -= s
			hPass += h
			sPass += s
			carried += int64(h + s)
			m.Exit()
		}
		m.Do(func() { doneFlag = true })
	}()
	passenger := func(off, pass *int) {
		defer wg.Done()
		for {
			m.Enter()
			if doneFlag && *pass == 0 {
				m.Exit()
				return
			}
			*off++
			m.Await(func() bool { return *pass > 0 || doneFlag })
			if *pass > 0 {
				*pass--
				consumed++
				m.Exit()
				continue
			}
			*off--
			m.Exit()
			return
		}
	}
	for i := 0; i < hackers; i++ {
		wg.Add(1)
		go passenger(&hOff, &hPass)
	}
	for i := 0; i < serfs; i++ {
		wg.Add(1)
		go passenger(&sOff, &sPass)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, carried, carried-consumed+int64(hOff+sOff+hPass+sPass))
}

func runRiverAuto(mech Mechanism, hackers, serfs, trips int) Result {
	m := newAuto(mech)
	hOff := m.NewInt("hOff", 0)
	sOff := m.NewInt("sOff", 0)
	hPass := m.NewInt("hPass", 0)
	sPass := m.NewInt("sPass", 0)
	done := m.NewBool("done", false)
	boatReady := m.MustCompile("(hOff >= 2 && sOff >= 2) || hOff >= 4 || sOff >= 4")
	hBoard := m.MustCompile("hPass > 0 || done")
	sBoard := m.MustCompile("sPass > 0 || done")
	var carried, consumed int64

	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for tr := 0; tr < trips; tr++ {
			m.Enter()
			await(boatReady)
			h, s := loadBoat(int(hOff.Get()), int(sOff.Get()))
			hOff.Add(int64(-h))
			sOff.Add(int64(-s))
			hPass.Add(int64(h))
			sPass.Add(int64(s))
			carried += int64(h + s)
			m.Exit()
		}
		m.Do(func() { done.Set(true) })
	}()
	passenger := func(off, pass *core.IntCell, board *core.Predicate) {
		defer wg.Done()
		for {
			m.Enter()
			if done.Get() && pass.Get() == 0 {
				m.Exit()
				return
			}
			off.Add(1)
			await(board)
			if pass.Get() > 0 {
				pass.Add(-1)
				consumed++
				m.Exit()
				continue
			}
			off.Add(-1)
			m.Exit()
			return
		}
	}
	for i := 0; i < hackers; i++ {
		wg.Add(1)
		go passenger(hOff, hPass, hBoard)
	}
	for i := 0; i < serfs; i++ {
		wg.Add(1)
		go passenger(sOff, sPass, sBoard)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var leak int64
	m.Do(func() { leak = hOff.Get() + sOff.Get() + hPass.Get() + sPass.Get() })
	return finish(mech, m, elapsed, carried, carried-consumed+leak)
}
