package problems

import (
	"sync"
	"time"

	"repro/internal/core"
)

// Parameters of the resource-allocator stress: a pool of PoolSize
// interchangeable units, requests of 1..MaxRequest units, and a periodic
// quiesce operation that waits for utilization to fall to a random
// waterline. MaxRequest ≤ PoolSize keeps every request satisfiable, and a
// waiting thread never holds units, so the workload cannot wedge.
const (
	PoolSize   = 256
	MaxRequest = 64
	// quiescePeriod makes every fourth operation a waterline wait.
	quiescePeriod = 4
)

func init() {
	Register(Spec{
		Name:           "resource-allocator",
		Runner:         RunResourceAllocator,
		DefaultThreads: 32,
		CheckDesc:      "all pool units returned (free == PoolSize, used == 0)",
	})
}

// RunResourceAllocator is a parameterized resource-allocator stress —
// the §4.3 threshold-tag torture test. Threads repeatedly acquire a
// random batch of units (waiting on free >= k, pruned by the min-heap
// over free) and return it; every quiescePeriod-th operation instead
// waits for utilization to drop to a random waterline (used <= w, pruned
// by the max-heap over used). Both heaps of the tag manager stay
// populated with constantly churning keys, and the explicit version must
// broadcast on every release because the batch sizes are thread-local —
// the Fig. 14 effect on a two-sided predicate mix.
//
// threads is the number of allocator threads; totalOps the total number
// of operations (acquire/release cycles plus waterline waits). Ops counts
// operations; Check is (PoolSize − free) + used (must be 0).
func RunResourceAllocator(mech Mechanism, threads, totalOps int) Result {
	return RunResourceAllocatorPool(mech, threads, totalOps, PoolSize, MaxRequest)
}

// RunResourceAllocatorPool is RunResourceAllocator with an explicit pool
// size and maximum request; maxReq is clamped to the pool size.
func RunResourceAllocatorPool(mech Mechanism, threads, totalOps, pool, maxReq int) Result {
	if threads < 1 {
		threads = 1
	}
	if maxReq > pool {
		maxReq = pool
	}
	if maxReq < 1 {
		maxReq = 1
	}
	ops := split(totalOps, threads)
	switch mech {
	case Explicit:
		return runAllocExplicit(ops, pool, maxReq)
	case Baseline:
		return runAllocBaseline(ops, pool, maxReq)
	default:
		return runAllocAuto(mech, ops, pool, maxReq)
	}
}

// Shared state shape for all variants: free counts unallocated units and
// used allocated ones; free + used == pool is the conservation invariant.

func runAllocExplicit(ops []int, pool, maxReq int) Result {
	m := core.NewExplicit()
	spaceCond := m.NewCond() // acquirers wait for free >= k (k is private)
	drainCond := m.NewCond() // quiescers wait for used <= w (w is private)
	free, used := pool, 0
	var completed int64

	var wg sync.WaitGroup
	start := time.Now()
	for i := range ops {
		wg.Add(1)
		go func(seed uint64, n int) {
			defer wg.Done()
			rng := newRand(seed)
			for op := 0; op < n; op++ {
				m.Enter()
				if op%quiescePeriod == quiescePeriod-1 {
					w := int(rng.intn(int64(pool))) - 1 // 0..pool-1
					drainCond.Await(func() bool { return used <= w })
					completed++
					m.Exit()
					continue
				}
				k := int(rng.intn(int64(maxReq)))
				spaceCond.Await(func() bool { return free >= k })
				free -= k
				used += k
				m.Exit()
				// hold the units (empty: saturation test)
				m.Enter()
				free += k
				used -= k
				// Which waiters can proceed depends on their private batch
				// sizes and waterlines: the explicit version must wake all.
				spaceCond.Broadcast()
				drainCond.Broadcast()
				completed++
				m.Exit()
			}
		}(uint64(i)+1, ops[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Explicit, m, elapsed, completed, int64(pool-free)+int64(used))
}

func runAllocBaseline(ops []int, pool, maxReq int) Result {
	m := core.NewBaseline()
	free, used := pool, 0
	var completed int64

	var wg sync.WaitGroup
	start := time.Now()
	for i := range ops {
		wg.Add(1)
		go func(seed uint64, n int) {
			defer wg.Done()
			rng := newRand(seed)
			for op := 0; op < n; op++ {
				m.Enter()
				if op%quiescePeriod == quiescePeriod-1 {
					w := int(rng.intn(int64(pool))) - 1
					m.Await(func() bool { return used <= w })
					completed++
					m.Exit()
					continue
				}
				k := int(rng.intn(int64(maxReq)))
				m.Await(func() bool { return free >= k })
				free -= k
				used += k
				m.Exit()
				m.Enter()
				free += k
				used -= k
				completed++
				m.Exit()
			}
		}(uint64(i)+1, ops[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	return finish(Baseline, m, elapsed, completed, int64(pool-free)+int64(used))
}

func runAllocAuto(mech Mechanism, ops []int, pool, maxReq int) Result {
	m := newAuto(mech)
	free := m.NewInt("free", int64(pool))
	used := m.NewInt("used", 0)
	drained := m.MustCompile("used <= w")
	hasUnits := m.MustCompile("free >= k")
	var completed int64

	var wg sync.WaitGroup
	start := time.Now()
	for i := range ops {
		wg.Add(1)
		go func(seed uint64, n int) {
			defer wg.Done()
			rng := newRand(seed)
			for op := 0; op < n; op++ {
				m.Enter()
				if op%quiescePeriod == quiescePeriod-1 {
					w := rng.intn(int64(pool)) - 1
					await(drained, core.BindInt("w", w))
					completed++
					m.Exit()
					continue
				}
				k := rng.intn(int64(maxReq))
				await(hasUnits, core.BindInt("k", k))
				free.Add(-k)
				used.Add(k)
				m.Exit()
				m.Enter()
				free.Add(k)
				used.Add(-k)
				completed++
				m.Exit()
			}
		}(uint64(i)+1, ops[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var check int64
	m.Do(func() { check = (int64(pool) - free.Get()) + used.Get() })
	return finish(mech, m, elapsed, completed, check)
}
