// Package linear decomposes integer expressions into linear forms over a
// designated set of variables.
//
// The paper's tag construction (§4.3) rewrites comparisons so that shared
// variables sit on the left and a constant on the right: the predicate
// x − a = y + b (x, y shared; a, b local) becomes x − y = a + b, an
// equivalence predicate whose shared expression is x − y and whose key is
// the globalized value of a + b. This package supplies the rewriting: it
// splits an expression into   Σ cᵢ·xᵢ  +  (residual)  + const,   where the
// xᵢ are "split" variables (the shared ones), the coefficients are integer
// constants, and the residual mentions only non-split variables.
package linear

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/expr"
)

// Form is a linear combination Σ Coeffs[v]·v + Const over int64 arithmetic.
// Variables with coefficient zero are never stored.
type Form struct {
	Coeffs map[string]int64
	Const  int64
}

// NewForm returns the zero form.
func NewForm() Form { return Form{Coeffs: map[string]int64{}} }

// Clone returns an independent copy of f.
func (f Form) Clone() Form {
	g := Form{Coeffs: make(map[string]int64, len(f.Coeffs)), Const: f.Const}
	for v, c := range f.Coeffs {
		g.Coeffs[v] = c
	}
	return g
}

// IsConst reports whether the form has no variable terms.
func (f Form) IsConst() bool { return len(f.Coeffs) == 0 }

// Add returns f + g.
func (f Form) Add(g Form) Form {
	out := f.Clone()
	out.Const += g.Const
	for v, c := range g.Coeffs {
		out.addTerm(v, c)
	}
	return out
}

// Sub returns f − g.
func (f Form) Sub(g Form) Form { return f.Add(g.Scale(-1)) }

// Scale returns k·f.
func (f Form) Scale(k int64) Form {
	if k == 0 {
		return NewForm()
	}
	out := Form{Coeffs: make(map[string]int64, len(f.Coeffs)), Const: f.Const * k}
	for v, c := range f.Coeffs {
		out.Coeffs[v] = c * k
	}
	return out
}

func (f *Form) addTerm(v string, c int64) {
	n := f.Coeffs[v] + c
	if n == 0 {
		delete(f.Coeffs, v)
	} else {
		f.Coeffs[v] = n
	}
}

// Vars returns the sorted variables with nonzero coefficients.
func (f Form) Vars() []string {
	vs := make([]string, 0, len(f.Coeffs))
	for v := range f.Coeffs {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Leading returns the lexicographically first variable and its coefficient;
// ok is false for a constant form.
func (f Form) Leading() (string, int64, bool) {
	vs := f.Vars()
	if len(vs) == 0 {
		return "", 0, false
	}
	return vs[0], f.Coeffs[vs[0]], true
}

// Equal reports whether two forms are identical.
func (f Form) Equal(g Form) bool {
	if f.Const != g.Const || len(f.Coeffs) != len(g.Coeffs) {
		return false
	}
	for v, c := range f.Coeffs {
		if g.Coeffs[v] != c {
			return false
		}
	}
	return true
}

// String renders the form canonically: variables in sorted order, unit
// coefficients elided, e.g. "x - 2*y + 3". The zero form renders as "0".
func (f Form) String() string {
	var sb strings.Builder
	vs := f.Vars()
	for i, v := range vs {
		c := f.Coeffs[v]
		if i == 0 {
			if c < 0 {
				sb.WriteByte('-')
				c = -c
			}
		} else {
			if c < 0 {
				sb.WriteString(" - ")
				c = -c
			} else {
				sb.WriteString(" + ")
			}
		}
		if c != 1 {
			sb.WriteString(strconv.FormatInt(c, 10))
			sb.WriteByte('*')
		}
		sb.WriteString(v)
	}
	if f.Const != 0 || len(vs) == 0 {
		if len(vs) == 0 {
			sb.WriteString(strconv.FormatInt(f.Const, 10))
		} else if f.Const < 0 {
			sb.WriteString(" - ")
			sb.WriteString(strconv.FormatInt(-f.Const, 10))
		} else {
			sb.WriteString(" + ")
			sb.WriteString(strconv.FormatInt(f.Const, 10))
		}
	}
	return sb.String()
}

// Node reconstructs an expression tree for the form, in canonical term
// order. Useful for evaluation and tests.
func (f Form) Node() expr.Node {
	var n expr.Node
	for _, v := range f.Vars() {
		c := f.Coeffs[v]
		var term expr.Node = expr.V(v)
		switch {
		case c == 1:
			// term as is
		case c == -1:
			term = expr.Neg(term)
		default:
			term = expr.Bin(expr.OpMul, expr.I(c), expr.V(v))
		}
		if n == nil {
			n = term
		} else if c < 0 && c != -1 {
			// already folded the sign into the literal; plain add
			n = expr.Bin(expr.OpAdd, n, term)
		} else if c == -1 {
			n = expr.Bin(expr.OpSub, n, expr.V(v))
			continue
		} else {
			n = expr.Bin(expr.OpAdd, n, term)
		}
	}
	if n == nil {
		return expr.I(f.Const)
	}
	if f.Const != 0 {
		if f.Const < 0 {
			n = expr.Bin(expr.OpSub, n, expr.I(-f.Const))
		} else {
			n = expr.Bin(expr.OpAdd, n, expr.I(f.Const))
		}
	}
	return n
}

// Split is the result of decomposing an integer expression with respect to
// a variable classifier: expr = SharedPart + Σ Residuals + Const, where
// SharedPart is linear over classifier-true variables with constant
// coefficients and each residual term mentions only classifier-false
// variables.
type Split struct {
	Shared    Form        // linear part over split (shared) variables; Const field unused (always 0)
	Residuals []expr.Node // each summand references only non-split variables
	Const     int64
}

// ResidualNode returns the residual sum as a single expression (0 if none).
func (s Split) ResidualNode() expr.Node {
	if len(s.Residuals) == 0 {
		return expr.I(0)
	}
	n := s.Residuals[0]
	for _, r := range s.Residuals[1:] {
		n = expr.Bin(expr.OpAdd, n, r)
	}
	return n
}

// Decompose splits an integer expression n with respect to isSplit. It
// fails (ok = false) when a split variable occurs non-linearly or with a
// non-constant coefficient: products of two split variables, a split
// variable multiplied by a non-split expression, or division/modulus
// involving split variables.
func Decompose(n expr.Node, isSplit func(string) bool) (Split, bool) {
	s, ok := decompose(expr.Fold(n), isSplit)
	if !ok {
		return Split{}, false
	}
	return s, true
}

func decompose(n expr.Node, isSplit func(string) bool) (Split, bool) {
	switch n := n.(type) {
	case expr.IntLit:
		return Split{Shared: NewForm(), Const: n.Value}, true
	case expr.Var:
		if isSplit(n.Name) {
			f := NewForm()
			f.Coeffs[n.Name] = 1
			return Split{Shared: f}, true
		}
		return Split{Shared: NewForm(), Residuals: []expr.Node{n}}, true
	case expr.Unary:
		if n.Op != expr.OpNeg {
			return Split{}, false
		}
		x, ok := decompose(n.X, isSplit)
		if !ok {
			return Split{}, false
		}
		return x.negate(), true
	case expr.Binary:
		switch n.Op {
		case expr.OpAdd, expr.OpSub:
			l, ok := decompose(n.L, isSplit)
			if !ok {
				return Split{}, false
			}
			r, ok := decompose(n.R, isSplit)
			if !ok {
				return Split{}, false
			}
			if n.Op == expr.OpSub {
				r = r.negate()
			}
			return Split{
				Shared:    l.Shared.Add(r.Shared),
				Residuals: append(append([]expr.Node{}, l.Residuals...), r.Residuals...),
				Const:     l.Const + r.Const,
			}, true
		case expr.OpMul:
			l, lok := decompose(n.L, isSplit)
			r, rok := decompose(n.R, isSplit)
			if !lok || !rok {
				return Split{}, false
			}
			lPure := l.Shared.IsConst() && len(l.Residuals) == 0 // integer constant
			rPure := r.Shared.IsConst() && len(r.Residuals) == 0
			lLocalOnly := l.Shared.IsConst() // no split vars (residual+const)
			rLocalOnly := r.Shared.IsConst()
			switch {
			case lPure:
				return r.scaleConst(l.Const), true
			case rPure:
				return l.scaleConst(r.Const), true
			case lLocalOnly && rLocalOnly:
				// Product of two purely non-split expressions: one residual.
				return Split{Shared: NewForm(), Residuals: []expr.Node{n}}, true
			default:
				// A split variable multiplied by a non-constant: nonlinear.
				return Split{}, false
			}
		case expr.OpDiv, expr.OpMod:
			l, lok := decompose(n.L, isSplit)
			r, rok := decompose(n.R, isSplit)
			if !lok || !rok {
				return Split{}, false
			}
			if l.Shared.IsConst() && r.Shared.IsConst() {
				if len(l.Residuals) == 0 && len(r.Residuals) == 0 {
					// Constant division: fold (guarding zero).
					if r.Const == 0 {
						return Split{}, false
					}
					if n.Op == expr.OpDiv {
						return Split{Shared: NewForm(), Const: l.Const / r.Const}, true
					}
					return Split{Shared: NewForm(), Const: l.Const % r.Const}, true
				}
				// Purely non-split division/modulus: keep as residual.
				return Split{Shared: NewForm(), Residuals: []expr.Node{n}}, true
			}
			return Split{}, false
		}
	}
	return Split{}, false
}

func (s Split) negate() Split {
	res := make([]expr.Node, len(s.Residuals))
	for i, r := range s.Residuals {
		res[i] = expr.Neg(r)
	}
	return Split{Shared: s.Shared.Scale(-1), Residuals: res, Const: -s.Const}
}

func (s Split) scaleConst(k int64) Split {
	if k == 0 {
		return Split{Shared: NewForm()}
	}
	res := make([]expr.Node, len(s.Residuals))
	for i, r := range s.Residuals {
		res[i] = expr.Bin(expr.OpMul, expr.I(k), r)
	}
	return Split{Shared: s.Shared.Scale(k), Residuals: res, Const: s.Const * k}
}
