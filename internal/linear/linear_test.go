package linear

import (
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

func sharedXYZ(name string) bool {
	return name == "x" || name == "y" || name == "z"
}

func TestDecomposeLinear(t *testing.T) {
	cases := []struct {
		src       string
		shared    string // canonical Form string of the shared part
		constant  int64
		residuals int
	}{
		{"x", "x", 0, 0},
		{"3", "0", 3, 0},
		{"x + 1", "x", 1, 0},
		{"x - y", "x - y", 0, 0},
		{"2*x + 3*y - 4", "2*x + 3*y", -4, 0},
		{"x*2", "2*x", 0, 0},
		{"-(x - y)", "-x + y", 0, 0},
		{"x - 2*(y - 3)", "x - 2*y", 6, 0},
		{"x + x", "2*x", 0, 0},
		{"x - x", "0", 0, 0},
		{"a", "0", 0, 1},         // non-split var goes to residual
		{"x + a", "x", 0, 1},     // mixed
		{"x + a*b", "x", 0, 1},   // product of non-split vars is one residual
		{"x + 2*a", "x", 0, 1},   // scaled residual
		{"a / b + x", "x", 0, 1}, // non-split division is a residual
		{"6 / 2 + x", "x", 3, 0}, // constant division folds
		{"7 % 4 + x", "x", 3, 0}, // constant modulus folds
		{"0*x + 5", "0", 5, 0},   // zero coefficient vanishes
		{"2*(x + y) - y", "2*x + y", 0, 0},
	}
	for _, c := range cases {
		s, ok := Decompose(expr.MustParse(c.src), sharedXYZ)
		if !ok {
			t.Errorf("Decompose(%q) failed", c.src)
			continue
		}
		if got := s.Shared.String(); got != c.shared {
			t.Errorf("Decompose(%q).Shared = %q, want %q", c.src, got, c.shared)
		}
		if s.Const != c.constant {
			t.Errorf("Decompose(%q).Const = %d, want %d", c.src, s.Const, c.constant)
		}
		if len(s.Residuals) != c.residuals {
			t.Errorf("Decompose(%q) has %d residuals, want %d", c.src, len(s.Residuals), c.residuals)
		}
	}
}

func TestDecomposeNonLinear(t *testing.T) {
	bad := []string{
		"x * y", // product of split vars
		"x * a", // split var with non-constant coefficient
		"x / 2", // division of a split var
		"x % 2", // modulus of a split var
		"2 / x", // division by a split var
		"a % x", // modulus by a split var
		"x * x", // quadratic
		"(x + 1) * (y + 1)",
	}
	for _, src := range bad {
		if _, ok := Decompose(expr.MustParse(src), sharedXYZ); ok {
			t.Errorf("Decompose(%q) succeeded, want failure", src)
		}
	}
}

func TestFormString(t *testing.T) {
	cases := []struct {
		coeffs map[string]int64
		c      int64
		want   string
	}{
		{nil, 0, "0"},
		{nil, -5, "-5"},
		{map[string]int64{"x": 1}, 0, "x"},
		{map[string]int64{"x": -1}, 0, "-x"},
		{map[string]int64{"x": 2}, 0, "2*x"},
		{map[string]int64{"x": 1, "y": -2}, 0, "x - 2*y"},
		{map[string]int64{"x": -1, "y": 1}, 3, "-x + y + 3"},
		{map[string]int64{"b": 1, "a": 1}, -1, "a + b - 1"},
	}
	for _, c := range cases {
		f := NewForm()
		for v, co := range c.coeffs {
			f.Coeffs[v] = co
		}
		f.Const = c.c
		if got := f.String(); got != c.want {
			t.Errorf("Form%v.String() = %q, want %q", c.coeffs, got, c.want)
		}
	}
}

func TestFormAlgebra(t *testing.T) {
	f := NewForm()
	f.Coeffs["x"] = 2
	f.Const = 1
	g := NewForm()
	g.Coeffs["x"] = -2
	g.Coeffs["y"] = 5
	g.Const = 3

	sum := f.Add(g)
	if sum.String() != "5*y + 4" {
		t.Errorf("Add = %q, want %q", sum.String(), "5*y + 4")
	}
	diff := f.Sub(g)
	if diff.String() != "4*x - 5*y - 2" {
		t.Errorf("Sub = %q, want %q", diff.String(), "4*x - 5*y - 2")
	}
	if !f.Scale(0).IsConst() || f.Scale(0).Const != 0 {
		t.Error("Scale(0) should be the zero form")
	}
	if f.Scale(3).String() != "6*x + 3" {
		t.Errorf("Scale(3) = %q", f.Scale(3).String())
	}
	if !f.Equal(f.Clone()) {
		t.Error("Clone not Equal")
	}
	if f.Equal(g) {
		t.Error("distinct forms reported Equal")
	}
	v, c, ok := g.Leading()
	if !ok || v != "x" || c != -2 {
		t.Errorf("Leading = (%q, %d, %t), want (x, -2, true)", v, c, ok)
	}
	if _, _, ok := NewForm().Leading(); ok {
		t.Error("Leading of constant form should report !ok")
	}
}

func TestFormNodeEvaluates(t *testing.T) {
	f := NewForm()
	f.Coeffs["x"] = 3
	f.Coeffs["y"] = -1
	f.Const = 7
	env := expr.MapEnv(map[string]expr.Value{
		"x": expr.IntValue(2), "y": expr.IntValue(5),
	})
	got, err := expr.EvalInt(f.Node(), env)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3*2-5+7 {
		t.Errorf("Node eval = %d, want %d", got, 3*2-5+7)
	}
	if v, err := expr.EvalInt(NewForm().Node(), env); err != nil || v != 0 {
		t.Errorf("zero form eval = (%d, %v)", v, err)
	}
}

// Property: Decompose is semantics-preserving — reconstructing
// shared.Node() + residuals + const evaluates to the original expression.
func TestPropertyDecomposePreservesSemantics(t *testing.T) {
	vals := map[string]expr.Value{
		"x": expr.IntValue(5), "y": expr.IntValue(-3), "z": expr.IntValue(2),
		"a": expr.IntValue(7), "b": expr.IntValue(-2),
	}
	env := expr.MapEnv(vals)
	gen := func(seed int64) expr.Node {
		s := seed
		next := func() int64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := s >> 33
			if v < 0 {
				v = -v
			}
			return v
		}
		names := []string{"x", "y", "z", "a", "b"}
		var intExpr func(depth int) expr.Node
		intExpr = func(depth int) expr.Node {
			if depth <= 0 {
				if next()%2 == 0 {
					return expr.I(next()%7 - 3)
				}
				return expr.V(names[next()%5])
			}
			switch next() % 5 {
			case 0:
				return expr.Neg(intExpr(depth - 1))
			case 1:
				return expr.Bin(expr.OpMul, expr.I(next()%5-2), intExpr(depth-1))
			case 2:
				return expr.Bin(expr.OpSub, intExpr(depth-1), intExpr(depth-1))
			default:
				return expr.Bin(expr.OpAdd, intExpr(depth-1), intExpr(depth-1))
			}
		}
		return intExpr(3)
	}
	f := func(seed int64) bool {
		n := gen(seed)
		want, err := expr.EvalInt(n, env)
		if err != nil {
			return true
		}
		s, ok := Decompose(n, sharedXYZ)
		if !ok {
			// Decompose may reject nonlinear shapes; the generator above
			// only multiplies by literals, so rejection is a failure.
			t.Logf("Decompose(%q) failed", n.String())
			return false
		}
		sharedVal, err := expr.EvalInt(s.Shared.Node(), env)
		if err != nil {
			return false
		}
		resVal, err := expr.EvalInt(s.ResidualNode(), env)
		if err != nil {
			return false
		}
		return sharedVal+resVal+s.Const == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
