package autosynch_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	autosynch "repro"
)

// TestQuickstart exercises the package-documentation example end to end.
func TestQuickstart(t *testing.T) {
	m := autosynch.New()
	count := m.NewInt("count", 0)
	m.NewInt("cap", 4)

	var wg sync.WaitGroup
	const items = 100
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < items; i++ {
			m.Enter()
			if err := m.Await("count < cap"); err != nil {
				t.Error(err)
			}
			count.Add(1)
			m.Exit()
		}
	}()
	go func() { // consumer taking 2 at a time
		defer wg.Done()
		for i := 0; i < items/2; i++ {
			m.Enter()
			if err := m.Await("count >= num", autosynch.Bind("num", 2)); err != nil {
				t.Error(err)
			}
			count.Add(-2)
			m.Exit()
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("quickstart deadlocked")
	}
	if s := m.Stats(); s.Broadcasts != 0 {
		t.Errorf("AutoSynch used %d broadcasts; the public API must never signalAll", s.Broadcasts)
	}
}

func TestFacadeReExports(t *testing.T) {
	if err := func() error {
		m := autosynch.New(autosynch.WithoutTagging(), autosynch.WithInactiveLimit(4), autosynch.WithDNFLimit(16))
		m.NewInt("x", 0)
		m.Enter()
		defer m.Exit()
		return m.Await("x >= n", autosynch.Bind("n", 0))
	}(); err != nil {
		t.Fatal(err)
	}

	m := autosynch.New()
	m.NewBool("flagged", true)
	m.Enter()
	if err := m.Await("ok", autosynch.BindBool("ok", true)); err != nil {
		t.Fatal(err)
	}
	err := m.Await("never", autosynch.BindBool("never", false))
	if !errors.Is(err, autosynch.ErrNeverTrue) {
		t.Errorf("err = %v, want ErrNeverTrue", err)
	}
	m.Exit()

	b := autosynch.NewBaseline()
	b.Do(func() {})
	e := autosynch.NewExplicit(autosynch.WithProfiling())
	c := e.NewCond()
	e.Do(func() { c.Signal(); c.Broadcast() })
	if s := e.Stats(); s.Signals != 1 || s.Broadcasts != 1 {
		t.Errorf("explicit stats = %s", s)
	}
}
