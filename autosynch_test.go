package autosynch_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	autosynch "repro"
	"repro/internal/testutil"
)

// TestQuickstart exercises the package-documentation example end to end.
func TestQuickstart(t *testing.T) {
	m := autosynch.New()
	count := m.NewInt("count", 0)
	m.NewInt("cap", 4)

	var wg sync.WaitGroup
	const items = 100
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < items; i++ {
			m.Enter()
			if err := m.Await("count < cap"); err != nil {
				t.Error(err)
			}
			count.Add(1)
			m.Exit()
		}
	}()
	go func() { // consumer taking 2 at a time
		defer wg.Done()
		for i := 0; i < items/2; i++ {
			m.Enter()
			if err := m.Await("count >= num", autosynch.Bind("num", 2)); err != nil {
				t.Error(err)
			}
			count.Add(-2)
			m.Exit()
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("quickstart deadlocked")
	}
	if s := m.Stats(); s.Broadcasts != 0 {
		t.Errorf("AutoSynch used %d broadcasts; the public API must never signalAll", s.Broadcasts)
	}
}

func TestFacadeReExports(t *testing.T) {
	if err := func() error {
		m := autosynch.New(autosynch.WithoutTagging(), autosynch.WithInactiveLimit(4), autosynch.WithDNFLimit(16))
		m.NewInt("x", 0)
		m.Enter()
		defer m.Exit()
		return m.Await("x >= n", autosynch.Bind("n", 0))
	}(); err != nil {
		t.Fatal(err)
	}

	m := autosynch.New()
	m.NewBool("flagged", true)
	m.Enter()
	if err := m.Await("ok", autosynch.BindBool("ok", true)); err != nil {
		t.Fatal(err)
	}
	err := m.Await("never", autosynch.BindBool("never", false))
	if !errors.Is(err, autosynch.ErrNeverTrue) {
		t.Errorf("err = %v, want ErrNeverTrue", err)
	}
	m.Exit()

	b := autosynch.NewBaseline()
	b.Do(func() {})
	e := autosynch.NewExplicit(autosynch.WithProfiling())
	c := e.NewCond()
	e.Do(func() { c.Signal(); c.Broadcast() })
	if s := e.Stats(); s.Signals != 1 || s.Broadcasts != 1 {
		t.Errorf("explicit stats = %s", s)
	}
}

// TestCompiledPredicateFacade exercises the compiled and typed-builder
// APIs through the public package: Compile/MustCompileExpr, AwaitPred,
// Predicate.Await, and the PredicateError/ErrNeverTrue error shapes.
func TestCompiledPredicateFacade(t *testing.T) {
	m := autosynch.New()
	count := m.NewInt("count", 0)
	capacity := m.NewInt("cap", 8)

	hasRoom := m.MustCompileExpr(
		count.Expr().Plus(autosynch.Local("k")).AtMost(capacity.Expr()))
	hasItems, err := m.Compile("count >= num")
	if err != nil {
		t.Fatal(err)
	}

	const items = 120
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < items/2; i++ {
			m.Enter()
			if err := hasRoom.Await(autosynch.Bind("k", 2)); err != nil {
				t.Error(err)
			}
			count.Add(2)
			m.Exit()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < items/2; i++ {
			m.Enter()
			if err := m.AwaitPred(hasItems, autosynch.Bind("num", 2)); err != nil {
				t.Error(err)
			}
			count.Add(-2)
			m.Exit()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("compiled-predicate workload deadlocked")
	}
	if s := m.Stats(); s.Broadcasts != 0 {
		t.Errorf("broadcasts = %d", s.Broadcasts)
	}

	// Error shapes through the facade.
	m.Enter()
	err = m.AwaitPred(hasItems) // missing binding
	var perr *autosynch.PredicateError
	if !errors.As(err, &perr) {
		t.Errorf("bind error %T is not a *PredicateError", err)
	}
	err = m.AwaitPred(hasItems, autosynch.Bind("num", -1), autosynch.Bind("num", -1))
	if !errors.As(err, &perr) {
		t.Errorf("duplicate-binding error %T is not a *PredicateError", err)
	}
	m.Exit()
}

// TestAwaitCtxFacade checks the documented AwaitCtx contract through the
// public API: ctx.Err() on cancellation, the monitor still held, and the
// relay chain intact afterwards.
func TestAwaitCtxFacade(t *testing.T) {
	m := autosynch.New()
	count := m.NewInt("count", 0)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		m.Enter()
		err := m.AwaitCtx(ctx, "count >= k", autosynch.Bind("k", 10))
		count.Add(1) // still inside the monitor after cancellation
		m.Exit()
		errCh <- err
	}()
	testutil.WaitFor(t, 10*time.Second, 0, func() bool { return m.Waiting() == 1 },
		"ctx waiter parked")
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	if s := m.Stats(); s.Abandons != 1 {
		t.Errorf("Abandons = %d, want 1", s.Abandons)
	}

	// A fresh waiter on the same monitor still gets relayed to.
	released := make(chan struct{})
	go func() {
		defer close(released)
		m.Enter()
		if err := m.Await("count >= k", autosynch.Bind("k", 3)); err != nil {
			t.Error(err)
		}
		m.Exit()
	}()
	testutil.WaitFor(t, 10*time.Second, 0, func() bool { return m.Waiting() == 1 },
		"post-cancel waiter parked")
	m.Do(func() { count.Add(3) })
	select {
	case <-released:
	case <-time.After(10 * time.Second):
		t.Fatal("relay chain broken after abandonment")
	}
}

// TestMechanismFacade drives the three monitor types through the shared
// interface re-exported by the facade.
func TestMechanismFacade(t *testing.T) {
	mechs := []autosynch.Mechanism{autosynch.New(), autosynch.NewBaseline(), autosynch.NewExplicit()}
	for _, mech := range mechs {
		mech.Do(func() {})
		mech.Enter()
		mech.AwaitFunc(func() bool { return true }) // already true: fast path
		mech.Exit()
		if mech.Stats().Awaits != 1 {
			t.Errorf("%T: awaits = %d", mech, mech.Stats().Awaits)
		}
		if mech.Waiting() != 0 {
			t.Errorf("%T: waiting = %d", mech, mech.Waiting())
		}
		mech.ResetStats()
	}
}
