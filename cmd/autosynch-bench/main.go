// Command autosynch-bench regenerates the tables and figures of the
// paper's evaluation section (§6) as text.
//
// Usage:
//
//	autosynch-bench -list
//	autosynch-bench -experiment fig14 -trials 5 -ops 50000 -maxthreads 256
//	autosynch-bench -experiment all -quick
//
// Absolute runtimes will differ from the paper (goroutines on modern
// hardware vs. Java threads on 2009 Xeons); the shapes — which mechanism
// wins, how each scales with thread count, where the crossovers are — are
// the reproduction target. See EXPERIMENTS.md for recorded outputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		trials     = flag.Int("trials", 5, "trials per configuration (paper: 25)")
		drop       = flag.Int("drop", 1, "best/worst trials dropped per side (paper: 1)")
		ops        = flag.Int("ops", 20000, "operation budget per configuration point")
		maxThreads = flag.Int("maxthreads", 256, "top of the doubling thread axis")
		quick      = flag.Bool("quick", false, "small smoke configuration (1 trial, 2000 ops, 32 threads)")
		paper      = flag.Bool("paper", false, "the full §6.1 protocol (25 trials, drop best+worst)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := harness.Config{
		Protocol:   harness.Protocol{Trials: *trials, Drop: *drop},
		TotalOps:   *ops,
		MaxThreads: *maxThreads,
	}
	if *quick {
		cfg = harness.Config{Protocol: harness.Quick, TotalOps: 2000, MaxThreads: 32}
		cfg.Protocol.Trials = 1
	}
	if *paper {
		cfg.Protocol = harness.Paper
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = harness.IDs()
	}
	for _, id := range ids {
		e, ok := harness.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		out := e.Run(cfg)
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n%s\n", e.ID, time.Since(start).Round(time.Millisecond),
			strings.Repeat("-", 72))
	}
}
