// Command autosynch-bench regenerates the tables and figures of the
// paper's evaluation section (§6) as text, and runs any scenario of the
// problem registry directly.
//
// Usage:
//
//	autosynch-bench -list
//	autosynch-bench -experiment fig14 -trials 5 -ops 50000 -maxthreads 256
//	autosynch-bench -experiment all -quick -json
//	autosynch-bench -problem river-crossing -ops 50000
//	autosynch-bench -problem fifo-barrier -mech autosynch,explicit -threads 64
//	autosynch-bench -problem sharded-kv -threads 256 -shards 16
//	autosynch-bench -experiment scale-shards -ops 50000 -maxthreads 256
//
// With -json every experiment additionally writes BENCH_<experiment>.json
// (the harness.Report with its structured figure series), and -problem
// writes BENCH_problem_<name>.json with the per-mechanism measurements,
// so the perf trajectory is machine-readable; CI uploads the -quick -json
// run as an artifact.
//
// Absolute runtimes will differ from the paper (goroutines on modern
// hardware vs. Java threads on 2009 Xeons); the shapes — which mechanism
// wins, how each scales with thread count, where the crossovers are — are
// the reproduction target. See EXPERIMENTS.md for recorded outputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/problems"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and scenarios, then exit")
		experiment = flag.String("experiment", "", "experiment id (see -list) or 'all'")
		problem    = flag.String("problem", "", "run one registered scenario directly (see -list)")
		mechList   = flag.String("mech", "", "comma-separated mechanisms for -problem (default: the scenario's lineup)")
		threads    = flag.Int("threads", 0, "thread count for -problem (default: the scenario's representative count)")
		shards     = flag.Int("shards", 0, "partition count for -problem runs of sharded scenarios (default: 8)")
		trials     = flag.Int("trials", 5, "trials per configuration (paper: 25)")
		drop       = flag.Int("drop", 1, "best/worst trials dropped per side (paper: 1)")
		ops        = flag.Int("ops", 20000, "operation budget per configuration point")
		maxThreads = flag.Int("maxthreads", 256, "top of the doubling thread axis")
		quick      = flag.Bool("quick", false, "small smoke configuration (1 trial, 2000 ops, 32 threads)")
		paper      = flag.Bool("paper", false, "the full §6.1 protocol (25 trials, drop best+worst)")
		jsonOut    = flag.Bool("json", false, "additionally write BENCH_<experiment>.json files with the structured results")
	)
	flag.Parse()

	// Conflicting flag combinations are usage errors, not silent
	// preferences: the run that would have happened is ambiguous.
	if *quick && *paper {
		usageError("-quick and -paper are mutually exclusive: pick one protocol")
	}
	if *experiment != "" && *problem != "" {
		usageError("-experiment and -problem are mutually exclusive: an experiment sweeps its own scenarios")
	}
	if *problem == "" {
		if *mechList != "" {
			usageError("-mech only applies to -problem runs")
		}
		if *threads != 0 {
			usageError("-threads only applies to -problem runs (experiments sweep a thread axis; see -maxthreads)")
		}
		if *shards != 0 {
			usageError("-shards only applies to -problem runs (the scale-shards experiment sweeps its own shard axis)")
		}
	}
	if *shards < 0 {
		usageError("-shards must be positive")
	}
	if flag.NArg() > 0 {
		usageError(fmt.Sprintf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}

	if *list {
		fmt.Println("experiments (-experiment):")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-26s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nscenarios (-problem):")
		for _, s := range problems.Specs() {
			fig := s.Figure
			if fig == "" {
				fig = "beyond the paper"
			}
			sharded := ""
			if s.Sharded {
				sharded = " [sharded]" // accepts -shards
			}
			fmt.Printf("  %-26s %s [%s]%s\n", s.Name, s.CheckDesc, fig, sharded)
		}
		return
	}

	cfg := harness.Config{
		Protocol:   harness.Protocol{Trials: *trials, Drop: *drop},
		TotalOps:   *ops,
		MaxThreads: *maxThreads,
	}
	if *quick {
		cfg = harness.Config{Protocol: harness.Quick, TotalOps: 2000, MaxThreads: 32}
		cfg.Protocol.Trials = 1
	}
	if *paper {
		cfg.Protocol = harness.Paper
	}

	if *problem != "" {
		runProblem(*problem, *mechList, *threads, *shards, cfg, *jsonOut)
		return
	}

	exp := *experiment
	if exp == "" {
		exp = "all"
	}
	ids := []string{exp}
	if exp == "all" {
		ids = harness.IDs()
	}
	for _, id := range ids {
		e, ok := harness.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep := e.Run(cfg)
		fmt.Println(rep.Text)
		if *jsonOut {
			writeJSON("BENCH_"+e.ID+".json", rep)
		}
		fmt.Printf("[%s completed in %v]\n\n%s\n", e.ID, time.Since(start).Round(time.Millisecond),
			strings.Repeat("-", 72))
	}
}

// usageError reports a flag-combination error and exits with the
// conventional usage status.
func usageError(msg string) {
	fmt.Fprintf(os.Stderr, "autosynch-bench: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}

// writeJSON marshals v into path, failing loudly: a missing artifact is a
// broken contract with CI, not a cosmetic issue.
func writeJSON(path string, v any) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal %s: %v\n", path, err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("[wrote %s]\n", path)
}

// problemReport is the -json shape of a single-scenario run: one
// measurement per mechanism at one configuration point.
type problemReport struct {
	Scenario string              `json:"scenario"`
	Threads  int                 `json:"threads"`
	Shards   int                 `json:"shards,omitempty"` // sharded scenarios only
	Ops      int                 `json:"ops"`
	Trials   int                 `json:"trials"`
	Check    string              `json:"check"`
	Results  []problemMechResult `json:"results"`
}

type problemMechResult struct {
	Mechanism   string              `json:"mechanism"`
	Measurement harness.Measurement `json:"measurement"`
}

// runProblem executes one registered scenario at a single configuration
// point and prints a per-mechanism result table.
func runProblem(name, mechList string, threads, shards int, cfg harness.Config, jsonOut bool) {
	spec, ok := problems.Lookup(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q; use -list\n", name)
		os.Exit(2)
	}
	if shards != 0 && !spec.Sharded {
		usageError(fmt.Sprintf("-shards does not apply to scenario %q (not a sharded workload; see -list)", name))
	}
	if shards != 0 {
		problems.SetShardCount(shards)
	}
	mechs := spec.Mechanisms()
	if mechList != "" {
		mechs = nil
		for _, s := range strings.Split(mechList, ",") {
			m, err := problems.ParseMechanism(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v (choose from explicit, baseline, autosynch-t, autosynch)\n", err)
				os.Exit(2)
			}
			mechs = append(mechs, m)
		}
	}
	if threads <= 0 {
		threads = spec.DefaultThreads
	}
	shardNote := ""
	reportShards := 0
	if spec.Sharded {
		reportShards = problems.ShardCount()
		shardNote = fmt.Sprintf(", %d shards", reportShards)
	}
	fmt.Printf("%s: %d threads%s, %d ops, %d trials (check: %s)\n",
		spec.Name, threads, shardNote, cfg.TotalOps, cfg.Protocol.Trials, spec.CheckDesc)
	fmt.Printf("%-12s %12s %12s %10s %10s %10s %10s\n",
		"mechanism", "mean", "ops/s", "wakeups", "futile", "signals", "bcasts")
	report := problemReport{Scenario: spec.Name, Threads: threads, Shards: reportShards,
		Ops: cfg.TotalOps, Trials: cfg.Protocol.Trials, Check: spec.CheckDesc}
	for _, mech := range mechs {
		mech := mech
		m := cfg.Protocol.Measure(func() problems.Result {
			return spec.Runner(mech, threads, cfg.TotalOps)
		})
		if m.CheckFailed {
			fmt.Fprintf(os.Stderr, "%s/%s: conservation check FAILED\n", spec.Name, mech)
			os.Exit(1)
		}
		// The counters and the throughput both come from the final trial,
		// so numerator and denominator stay consistent even when a
		// scenario's op count varies with scheduling (OpsVary).
		r := m.Last
		fmt.Printf("%-12s %12s %12.0f %10d %10d %10d %10d\n",
			mech, time.Duration(m.MeanSeconds*float64(time.Second)).Round(time.Microsecond),
			r.Throughput(), r.Stats.Wakeups, r.Stats.FutileWakeups, r.Stats.Signals, r.Stats.Broadcasts)
		report.Results = append(report.Results, problemMechResult{Mechanism: mech.String(), Measurement: m})
	}
	if jsonOut {
		writeJSON("BENCH_problem_"+spec.Name+".json", report)
	}
}
