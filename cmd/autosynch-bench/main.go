// Command autosynch-bench regenerates the tables and figures of the
// paper's evaluation section (§6) as text, and runs any scenario of the
// problem registry directly.
//
// Usage:
//
//	autosynch-bench -list
//	autosynch-bench -experiment fig14 -trials 5 -ops 50000 -maxthreads 256
//	autosynch-bench -experiment all -quick -json
//	autosynch-bench -problem river-crossing -ops 50000
//	autosynch-bench -problem fifo-barrier -mech autosynch,explicit -threads 64
//	autosynch-bench -problem sharded-kv -threads 256 -shards 16
//	autosynch-bench -experiment scale-shards -ops 50000 -maxthreads 256
//	autosynch-bench -experiment wake-policy -trace wake.trace
//	autosynch-bench -analyze wake.trace
//	autosynch-bench -experiment scale-shards -gomaxprocs 1,2,4 -json
//
// With -json every experiment additionally writes BENCH_<experiment>.json
// (the harness.Report with its structured figure series), and -problem
// writes BENCH_problem_<name>.json with the per-mechanism measurements,
// so the perf trajectory is machine-readable; CI uploads the -quick -json
// run as an artifact.
//
// -trace records the run in the internal/obs flight recorder and dumps
// the merged event stream into a binary trace file; -analyze reloads such
// a file and prints the wake-chain reconstruction (chain lengths, relay
// hops, futile ratio, storm count). -gomaxprocs repeats the run once per
// listed GOMAXPROCS value, suffixing JSON artifacts with -p<N>.
//
// Absolute runtimes will differ from the paper (goroutines on modern
// hardware vs. Java threads on 2009 Xeons); the shapes — which mechanism
// wins, how each scales with thread count, where the crossovers are — are
// the reproduction target. See EXPERIMENTS.md for recorded outputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/problems"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and scenarios, then exit")
		experiment = flag.String("experiment", "", "experiment id (see -list) or 'all'")
		problem    = flag.String("problem", "", "run one registered scenario directly (see -list)")
		mechList   = flag.String("mech", "", "comma-separated mechanisms for -problem (default: the scenario's lineup)")
		threads    = flag.Int("threads", 0, "thread count for -problem (default: the scenario's representative count)")
		shards     = flag.Int("shards", 0, "partition count for -problem runs of sharded scenarios (default: 8)")
		trials     = flag.Int("trials", 5, "trials per configuration (paper: 25)")
		drop       = flag.Int("drop", 1, "best/worst trials dropped per side (paper: 1)")
		ops        = flag.Int("ops", 20000, "operation budget per configuration point")
		maxThreads = flag.Int("maxthreads", 256, "top of the doubling thread axis")
		quick      = flag.Bool("quick", false, "small smoke configuration (1 trial, 2000 ops, 32 threads)")
		paper      = flag.Bool("paper", false, "the full §6.1 protocol (25 trials, drop best+worst)")
		jsonOut    = flag.Bool("json", false, "additionally write BENCH_<experiment>.json files with the structured results")
		traceFile  = flag.String("trace", "", "record the run in the flight recorder and write the event stream to this file")
		analyze    = flag.String("analyze", "", "analyze a trace file written by -trace, print wake-chain tables, then exit")
		procList   = flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS values: repeat the run once per value (-p<N> json suffix)")
	)
	flag.Parse()

	// Conflicting flag combinations are usage errors, not silent
	// preferences: the run that would have happened is ambiguous.
	if *quick && *paper {
		usageError("-quick and -paper are mutually exclusive: pick one protocol")
	}
	if *experiment != "" && *problem != "" {
		usageError("-experiment and -problem are mutually exclusive: an experiment sweeps its own scenarios")
	}
	if *problem == "" {
		if *mechList != "" {
			usageError("-mech only applies to -problem runs")
		}
		if *threads != 0 {
			usageError("-threads only applies to -problem runs (experiments sweep a thread axis; see -maxthreads)")
		}
		if *shards != 0 {
			usageError("-shards only applies to -problem runs (the scale-shards experiment sweeps its own shard axis)")
		}
	}
	if *shards < 0 {
		usageError("-shards must be positive")
	}
	if *analyze != "" && (*experiment != "" || *problem != "" || *traceFile != "" || *procList != "") {
		usageError("-analyze is a standalone mode: it reads a recorded trace and runs nothing")
	}
	procs, err := parseProcs(*procList)
	if err != nil {
		usageError(err.Error())
	}
	if flag.NArg() > 0 {
		usageError(fmt.Sprintf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}

	if *analyze != "" {
		runAnalyze(*analyze)
		return
	}

	if *list {
		fmt.Println("experiments (-experiment):")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-26s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nscenarios (-problem):")
		for _, s := range problems.Specs() {
			fig := s.Figure
			if fig == "" {
				fig = "beyond the paper"
			}
			sharded := ""
			if s.Sharded {
				sharded = " [sharded]" // accepts -shards
			}
			fmt.Printf("  %-26s %s [%s]%s\n", s.Name, s.CheckDesc, fig, sharded)
		}
		return
	}

	cfg := harness.Config{
		Protocol:   harness.Protocol{Trials: *trials, Drop: *drop},
		TotalOps:   *ops,
		MaxThreads: *maxThreads,
	}
	if *quick {
		cfg = harness.Config{Protocol: harness.Quick, TotalOps: 2000, MaxThreads: 32}
		cfg.Protocol.Trials = 1
	}
	if *paper {
		cfg.Protocol = harness.Paper
	}

	// The recorder wraps the whole run (every GOMAXPROCS pass): monitors
	// bind their rings at construction, so it must be active before any
	// scenario builds one.
	var rec *obs.Recorder
	if *traceFile != "" {
		rec = obs.Start(obs.DefaultRingSize)
	}

	for _, p := range procs {
		suffix := ""
		if p > 0 {
			runtime.GOMAXPROCS(p)
			suffix = fmt.Sprintf("-p%d", p)
			fmt.Printf("[GOMAXPROCS=%d]\n", p)
		}
		if *problem != "" {
			runProblem(*problem, *mechList, *threads, *shards, cfg, *jsonOut, suffix)
			continue
		}

		exp := *experiment
		if exp == "" {
			exp = "all"
		}
		ids := []string{exp}
		if exp == "all" {
			ids = harness.IDs()
		}
		for _, id := range ids {
			e, ok := harness.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			start := time.Now()
			rep := e.Run(cfg)
			fmt.Println(rep.Text)
			if *jsonOut {
				writeJSON("BENCH_"+e.ID+suffix+".json", rep)
			}
			fmt.Printf("[%s completed in %v]\n\n%s\n", e.ID, time.Since(start).Round(time.Millisecond),
				strings.Repeat("-", 72))
		}
	}

	if rec != nil {
		obs.Stop()
		events := rec.Events()
		if err := obs.WriteFile(*traceFile, events, rec.Drops()); err != nil {
			fmt.Fprintf(os.Stderr, "write trace %s: %v\n", *traceFile, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s: %d events, %d rings, %d drops]\n",
			*traceFile, len(events), len(rec.Rings()), rec.Drops())
	}
}

// parseProcs parses the -gomaxprocs list; empty input means one pass at
// the inherited GOMAXPROCS (encoded as the single value 0).
func parseProcs(s string) ([]int, error) {
	if s == "" {
		return []int{0}, nil
	}
	var procs []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-gomaxprocs wants a comma-separated list of positive integers, got %q", part)
		}
		procs = append(procs, n)
	}
	return procs, nil
}

// runAnalyze loads a -trace file and prints the wake-chain view: the
// aggregate analysis line, the chain-length distribution, and the
// longest chains.
func runAnalyze(path string) {
	events, drops, err := obs.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "read trace %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d events\n", path, len(events))
	an := obs.Analyze(events, drops)
	fmt.Println(an.String())
	fmt.Print(obs.LengthTable(obs.Chains(events)))
}

// usageError reports a flag-combination error and exits with the
// conventional usage status.
func usageError(msg string) {
	fmt.Fprintf(os.Stderr, "autosynch-bench: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}

// writeJSON marshals v into path, failing loudly: a missing artifact is a
// broken contract with CI, not a cosmetic issue.
func writeJSON(path string, v any) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal %s: %v\n", path, err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("[wrote %s]\n", path)
}

// problemReport is the -json shape of a single-scenario run: one
// measurement per mechanism at one configuration point.
type problemReport struct {
	Scenario string              `json:"scenario"`
	Threads  int                 `json:"threads"`
	Shards   int                 `json:"shards,omitempty"` // sharded scenarios only
	Ops      int                 `json:"ops"`
	Trials   int                 `json:"trials"`
	Check    string              `json:"check"`
	Results  []problemMechResult `json:"results"`
}

type problemMechResult struct {
	Mechanism   string              `json:"mechanism"`
	Measurement harness.Measurement `json:"measurement"`
}

// runProblem executes one registered scenario at a single configuration
// point and prints a per-mechanism result table.
func runProblem(name, mechList string, threads, shards int, cfg harness.Config, jsonOut bool, suffix string) {
	spec, ok := problems.Lookup(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q; use -list\n", name)
		os.Exit(2)
	}
	if shards != 0 && !spec.Sharded {
		usageError(fmt.Sprintf("-shards does not apply to scenario %q (not a sharded workload; see -list)", name))
	}
	if shards != 0 {
		problems.SetShardCount(shards)
	}
	mechs := spec.Mechanisms()
	if mechList != "" {
		mechs = nil
		for _, s := range strings.Split(mechList, ",") {
			m, err := problems.ParseMechanism(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v (choose from explicit, baseline, autosynch-t, autosynch)\n", err)
				os.Exit(2)
			}
			mechs = append(mechs, m)
		}
	}
	if threads <= 0 {
		threads = spec.DefaultThreads
	}
	shardNote := ""
	reportShards := 0
	if spec.Sharded {
		reportShards = problems.ShardCount()
		shardNote = fmt.Sprintf(", %d shards", reportShards)
	}
	fmt.Printf("%s: %d threads%s, %d ops, %d trials (check: %s)\n",
		spec.Name, threads, shardNote, cfg.TotalOps, cfg.Protocol.Trials, spec.CheckDesc)
	fmt.Printf("%-12s %12s %12s %10s %10s %10s %10s\n",
		"mechanism", "mean", "ops/s", "wakeups", "futile", "signals", "bcasts")
	report := problemReport{Scenario: spec.Name, Threads: threads, Shards: reportShards,
		Ops: cfg.TotalOps, Trials: cfg.Protocol.Trials, Check: spec.CheckDesc}
	for _, mech := range mechs {
		mech := mech
		m := cfg.Protocol.Measure(func() problems.Result {
			return spec.Runner(mech, threads, cfg.TotalOps)
		})
		if m.CheckFailed {
			fmt.Fprintf(os.Stderr, "%s/%s: conservation check FAILED\n", spec.Name, mech)
			os.Exit(1)
		}
		// The counters and the throughput both come from the final trial,
		// so numerator and denominator stay consistent even when a
		// scenario's op count varies with scheduling (OpsVary).
		r := m.Last
		fmt.Printf("%-12s %12s %12.0f %10d %10d %10d %10d\n",
			mech, time.Duration(m.MeanSeconds*float64(time.Second)).Round(time.Microsecond),
			r.Throughput(), r.Stats.Wakeups, r.Stats.FutileWakeups, r.Stats.Signals, r.Stats.Broadcasts)
		report.Results = append(report.Results, problemMechResult{Mechanism: mech.String(), Measurement: m})
	}
	if jsonOut {
		writeJSON("BENCH_problem_"+spec.Name+suffix+".json", report)
	}
}
