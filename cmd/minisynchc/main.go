// Command minisynchc is the MiniSynch compiler: it translates a
// monitor-class dialect with waituntil statements into plain Go targeting
// the autosynch runtime — the role the JavaCC preprocessor plays in the
// paper's framework (Fig. 2) — and, as the second half of that role,
// compiles waituntil predicates to specialized Go evaluators. The -emit
// preds, -manifest, and -corpus modes emit a zz_generated_preds.go-style
// file whose init function calls autosynch.RegisterGenerated for every
// predicate, so monitors compiled at runtime transparently dispatch to
// monomorphic generated code instead of the closure interpreter.
//
// Usage:
//
//	minisynchc -pkg mypkg -o buffer_gen.go buffer.ms
//	minisynchc buffer.ms              # writes <input>_gen.go next to the input
//	cat buffer.ms | minisynchc -      # reads stdin, writes stdout
//	minisynchc -fmt buffer.ms         # canonical formatting to stdout
//	minisynchc -emit preds buffer.ms  # predicate registrations from waituntils
//	minisynchc -manifest preds.manifest
//	minisynchc -corpus 1:48 -pkg codegen -o zz_generated_corpus.go
//
// The predicate-emitting modes are meant to run under go:generate; their
// output is deterministic for fixed inputs so CI can regenerate and diff.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/codegen"
	"repro/internal/preproc"
)

// options holds the parsed and validated command line.
type options struct {
	pkg      string
	out      string
	emit     string // "monitor" or "preds"
	manifest bool
	corpus   string // "seed:n" when set
	format   bool
	input    string // positional input path, "-" for stdin, "" in corpus mode

	// resolved from corpus by validate.
	corpusSeed uint64
	corpusN    int
}

func defaultOptions() options {
	return options{pkg: "main", emit: "monitor"}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  minisynchc [-pkg name] [-o file] <input.ms | ->    translate monitor classes to Go
  minisynchc -emit preds [...] <input.ms | ->        predicate registrations from waituntils
  minisynchc -manifest [...] <manifest | ->          predicate registrations from a manifest
  minisynchc -corpus seed:n [...]                    predicate registrations for the fuzz corpus
  minisynchc -fmt <input.ms | ->                     canonical formatting to stdout
`)
}

// parseOptions parses args into options and validates them. It returns
// flag.ErrHelp for -h/-help; any other error is a usage error.
func parseOptions(args []string) (options, error) {
	o := defaultOptions()
	fs := flag.NewFlagSet("minisynchc", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.StringVar(&o.pkg, "pkg", o.pkg, "package name for the generated file")
	fs.StringVar(&o.out, "o", "", "output path (- for stdout)")
	fs.StringVar(&o.emit, "emit", o.emit, "what to emit from a .ms input: monitor or preds")
	fs.BoolVar(&o.manifest, "manifest", false, "treat the input as a predicate manifest")
	fs.StringVar(&o.corpus, "corpus", "", "emit registrations for the deterministic corpus (seed:n); takes no input")
	fs.BoolVar(&o.format, "fmt", false, "format the MiniSynch source to stdout instead of compiling")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch fs.NArg() {
	case 0:
	case 1:
		o.input = fs.Arg(0)
	default:
		return o, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args()[1:], " "))
	}
	if err := o.validate(set); err != nil {
		return o, err
	}
	return o, nil
}

// validate rejects contradictory flag combinations; set records which
// flags were given explicitly.
func (o *options) validate(set map[string]bool) error {
	if o.format {
		for _, f := range []string{"emit", "manifest", "corpus", "o", "pkg"} {
			if set[f] {
				return fmt.Errorf("-fmt formats to stdout and cannot be combined with -%s", f)
			}
		}
	}
	if o.manifest && set["corpus"] {
		return errors.New("-manifest and -corpus are mutually exclusive")
	}
	if set["emit"] && (o.manifest || set["corpus"]) {
		return errors.New("-emit applies to .ms inputs only; -manifest and -corpus always emit predicate registrations")
	}
	switch o.emit {
	case "monitor", "preds":
	default:
		return fmt.Errorf("invalid -emit value %q (want monitor or preds)", o.emit)
	}
	if o.pkg == "" {
		return errors.New("-pkg must not be empty")
	}
	if set["corpus"] {
		if o.input != "" {
			return fmt.Errorf("-corpus takes no input file (got %q)", o.input)
		}
		seed, n, err := parseCorpusSpec(o.corpus)
		if err != nil {
			return err
		}
		o.corpusSeed, o.corpusN = seed, n
		return nil
	}
	if o.input == "" {
		return errors.New("missing input file (use - for stdin)")
	}
	return nil
}

// parseCorpusSpec parses a "seed:n" corpus specification.
func parseCorpusSpec(spec string) (uint64, int, error) {
	seedStr, nStr, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("invalid -corpus spec %q (want seed:n)", spec)
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("invalid -corpus seed %q: %v", seedStr, err)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 1 {
		return 0, 0, fmt.Errorf("invalid -corpus size %q (want a positive count)", nStr)
	}
	return seed, n, nil
}

// inputName is the input's base name, used in error positions and in the
// generated file's provenance line — base only, so output does not depend
// on where the tree is checked out.
func (o options) inputName() string {
	if o.input == "-" {
		return "stdin"
	}
	return filepath.Base(o.input)
}

// outputPath resolves the destination; "" means stdout.
func (o options) outputPath() string {
	if o.out == "-" {
		return ""
	}
	if o.out != "" {
		return o.out
	}
	if o.corpus != "" || o.input == "-" {
		return ""
	}
	dir := filepath.Dir(o.input)
	if o.manifest || o.emit == "preds" {
		return filepath.Join(dir, "zz_generated_preds.go")
	}
	base := strings.TrimSuffix(filepath.Base(o.input), filepath.Ext(o.input))
	return filepath.Join(dir, base+"_gen.go")
}

// run executes the compile; it returns the process exit code (0 success,
// 1 runtime failure) so tests can drive it without exec.
func run(o options, stdin io.Reader, stdout, stderr io.Writer) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "minisynchc: "+format+"\n", args...)
		return 1
	}

	var code string
	if o.corpus != "" {
		in := codegen.Corpus(o.corpusSeed, o.corpusN)
		out, err := codegen.Generate(codegen.Options{
			Pkg:    o.pkg,
			Source: fmt.Sprintf("minisynchc -corpus %d:%d", o.corpusSeed, o.corpusN),
		}, []codegen.Input{in})
		if err != nil {
			return fail("%v", err)
		}
		code = out
	} else {
		src, err := readInput(o.input, stdin)
		if err != nil {
			return fail("%v", err)
		}
		switch {
		case o.format:
			formatted, err := preproc.FormatSource(src)
			if err != nil {
				return fail("%s: %v", o.inputName(), err)
			}
			fmt.Fprint(stdout, formatted)
			return 0
		case o.manifest:
			inputs, err := codegen.ParseManifest(o.inputName(), src)
			if err != nil {
				return fail("%v", err)
			}
			code, err = codegen.Generate(codegen.Options{
				Pkg:    o.pkg,
				Source: "minisynchc -manifest " + o.inputName(),
			}, inputs)
			if err != nil {
				return fail("%v", err)
			}
		case o.emit == "preds":
			prog, err := preproc.Parse(src)
			if err != nil {
				return fail("%s: %v", o.inputName(), err)
			}
			checked, err := preproc.Check(prog)
			if err != nil {
				return fail("%s: %v", o.inputName(), err)
			}
			inputs := codegen.FromChecked(checked)
			if len(inputs) == 0 {
				return fail("%s: no waituntil predicates to generate", o.inputName())
			}
			code, err = codegen.Generate(codegen.Options{
				Pkg:    o.pkg,
				Source: "minisynchc -emit preds " + o.inputName(),
			}, inputs)
			if err != nil {
				return fail("%v", err)
			}
		default:
			code, err = preproc.Generate(src, o.pkg)
			if err != nil {
				return fail("%s: %v", o.inputName(), err)
			}
		}
	}

	dest := o.outputPath()
	if dest == "" {
		fmt.Fprint(stdout, code)
		return 0
	}
	if err := os.WriteFile(dest, []byte(code), 0o644); err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(stderr, "minisynchc: wrote %s\n", dest)
	return 0
}

func readInput(path string, stdin io.Reader) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func main() {
	o, err := parseOptions(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			usage(os.Stdout)
			return
		}
		fmt.Fprintf(os.Stderr, "minisynchc: %v\n", err)
		usage(os.Stderr)
		os.Exit(2)
	}
	os.Exit(run(o, os.Stdin, os.Stdout, os.Stderr))
}
