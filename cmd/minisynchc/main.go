// Command minisynchc is the MiniSynch preprocessor: it translates a
// monitor-class dialect with waituntil statements into plain Go code that
// targets the autosynch runtime — the role the JavaCC preprocessor plays
// in the paper's framework (Fig. 2).
//
// Usage:
//
//	minisynchc -pkg mypkg -o buffer_gen.go buffer.ms
//	minisynchc buffer.ms            # writes <input>_gen.go next to the input
//	cat buffer.ms | minisynchc -    # reads stdin, writes stdout
//	minisynchc -fmt buffer.ms       # canonical formatting to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/preproc"
)

func main() {
	var (
		pkg    = flag.String("pkg", "main", "package name for the generated file")
		out    = flag.String("o", "", "output path (default: <input>_gen.go, or stdout for stdin input)")
		format = flag.Bool("fmt", false, "format the MiniSynch source to stdout instead of compiling")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minisynchc [-pkg name] [-o file] <input.ms | ->")
		os.Exit(2)
	}
	in := flag.Arg(0)

	var src []byte
	var err error
	if in == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(in)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "minisynchc: %v\n", err)
		os.Exit(1)
	}

	if *format {
		formatted, err := preproc.FormatSource(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "minisynchc: %s: %v\n", in, err)
			os.Exit(1)
		}
		fmt.Print(formatted)
		return
	}

	code, err := preproc.Generate(string(src), *pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "minisynchc: %s: %v\n", in, err)
		os.Exit(1)
	}

	dest := *out
	if dest == "" {
		if in == "-" {
			fmt.Print(code)
			return
		}
		base := strings.TrimSuffix(filepath.Base(in), filepath.Ext(in))
		dest = filepath.Join(filepath.Dir(in), base+"_gen.go")
	}
	if dest == "-" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(dest, []byte(code), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "minisynchc: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "minisynchc: wrote %s\n", dest)
}
