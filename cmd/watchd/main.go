// Command watchd soak-tests the keyed watch-service daemon: it holds a
// standing population of watch sessions over a sharded automatic-signal
// monitor while churn generators replace sessions and publishers bump
// key versions, then drains and verifies nothing leaked — no goroutines,
// no zombie notifications, no registered waiters.
//
// Usage:
//
//	watchd -sessions 100000 -duration 60s
//	watchd -quick -json
//	watchd -sessions 10000 -duration 20s -max-idle 9000 -min-evictions 1 -json
//	watchd -quick -trace watchd.trace -metrics-addr 127.0.0.1:8125
//
// -trace records the soak in the internal/obs flight recorder and dumps
// the event stream to a binary file (analyze it with autosynch-bench
// -analyze). -metrics-addr serves the live daemon gauges — population,
// armed waiters, delivery counters, ring accounting — as expvar-style
// JSON at /debug/vars for the soak's duration.
//
// The exit status is the verdict: 0 means the population was sustained,
// the drain was clean, and the eviction floor (if any) was met; 1 means
// an invariant failed; 2 is a usage error. With -json the full result —
// wake-to-claim latency histogram with p50/p99/p999, delivery and
// eviction counters, sustained-population bracket — is written to -out
// (default BENCH_watchd.json) even when the run fails, so CI keeps the
// artifact of a bad run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/watchd"
)

// options is the parsed flag set. Keeping validation and config mapping
// as pure methods on this struct makes the flag contract testable
// without exec-ing the binary.
type options struct {
	sessions     int
	duration     time.Duration
	keys         int
	shards       int
	maxIdle      int
	maxSessions  int
	idleExpiry   time.Duration
	churners     int
	churnEvery   time.Duration
	publishers   int
	publishEvery time.Duration
	seed         int64
	minEvictions uint64
	quick        bool
	jsonOut      bool
	out          string
	trace        string
	metricsAddr  string
}

// validate rejects contradictory or meaningless flag combinations.
// set holds the names of flags the user passed explicitly; a conflicting
// combination is a usage error, not a silent preference, because the run
// that would have happened is ambiguous.
func (o options) validate(set map[string]bool) error {
	if o.quick && (set["sessions"] || set["duration"]) {
		return fmt.Errorf("-quick chooses its own population and interval; drop -sessions/-duration or drop -quick")
	}
	if o.sessions < 1 {
		return fmt.Errorf("-sessions must be at least 1, got %d", o.sessions)
	}
	if o.duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", o.duration)
	}
	if o.keys < 0 || o.shards < 0 {
		return fmt.Errorf("-keys and -shards must be non-negative (0 means the daemon default)")
	}
	if o.maxIdle < 0 {
		return fmt.Errorf("-max-idle must be non-negative (0 derives eviction pressure from -sessions)")
	}
	if o.maxSessions < 0 {
		return fmt.Errorf("-max-sessions must be non-negative (0 leaves admission headroom above -sessions)")
	}
	if o.maxSessions > 0 && o.maxSessions < o.sessions && !o.quick {
		return fmt.Errorf("-max-sessions %d below -sessions %d would reject the initial fill", o.maxSessions, o.sessions)
	}
	if o.churners < 0 || o.publishers < 0 {
		return fmt.Errorf("-churners and -publishers must be non-negative (0 means the soak default)")
	}
	if o.churnEvery < 0 || o.publishEvery < 0 {
		return fmt.Errorf("-churn-every and -publish-every must be non-negative")
	}
	if o.idleExpiry < 0 {
		return fmt.Errorf("-idle-expiry must be non-negative (0 disables the idle deadline)")
	}
	if o.out == "" {
		return fmt.Errorf("-out must name a file")
	}
	return nil
}

// resolve applies -quick and derives the eviction threshold. MaxIdle
// defaults to seven eighths of the population so the LRU evictor is
// exercised on every run; pass -max-idle at or above -sessions to turn
// eviction pressure off.
func (o options) resolve() options {
	if o.quick {
		o.sessions = 5000
		o.duration = 3 * time.Second
	}
	if o.maxIdle == 0 {
		o.maxIdle = o.sessions - o.sessions/8
	}
	return o
}

// soakConfig maps the resolved options onto the soak harness.
func (o options) soakConfig() watchd.SoakConfig {
	return watchd.SoakConfig{
		Daemon: watchd.Config{
			Keys:        o.keys,
			Shards:      o.shards,
			MaxIdle:     o.maxIdle,
			MaxSessions: o.maxSessions,
			IdleExpiry:  o.idleExpiry,
		},
		Sessions:     o.sessions,
		Duration:     o.duration,
		Churners:     o.churners,
		ChurnEvery:   o.churnEvery,
		Publishers:   o.publishers,
		PublishEvery: o.publishEvery,
		Seed:         o.seed,
	}
}

// report is the -json artifact: the flags that shaped the run, the full
// soak result (histogram included), and the failure if there was one.
type report struct {
	Config struct {
		Sessions     int    `json:"sessions"`
		DurationNs   int64  `json:"duration_ns"`
		Keys         int    `json:"keys,omitempty"`
		Shards       int    `json:"shards,omitempty"`
		MaxIdle      int    `json:"max_idle"`
		MaxSessions  int    `json:"max_sessions,omitempty"`
		IdleExpiryNs int64  `json:"idle_expiry_ns,omitempty"`
		Churners     int    `json:"churners,omitempty"`
		Publishers   int    `json:"publishers,omitempty"`
		Seed         int64  `json:"seed,omitempty"`
		MinEvictions uint64 `json:"min_evictions,omitempty"`
	} `json:"config"`
	Result watchd.SoakResult `json:"result"`
	Error  string            `json:"error,omitempty"`
}

func main() {
	var o options
	flag.IntVar(&o.sessions, "sessions", 100000, "standing watch-session population")
	flag.DurationVar(&o.duration, "duration", 30*time.Second, "measurement interval after the fill")
	flag.IntVar(&o.keys, "keys", 0, "watchable key space (0: daemon default)")
	flag.IntVar(&o.shards, "shards", 0, "monitor shard count (0: daemon default)")
	flag.IntVar(&o.maxIdle, "max-idle", 0, "armed-session threshold before LRU eviction (0: 7/8 of -sessions)")
	flag.IntVar(&o.maxSessions, "max-sessions", 0, "admission-control session limit (0: headroom above -sessions)")
	flag.DurationVar(&o.idleExpiry, "idle-expiry", 0, "idle deadline before a session expires with ErrExpired (0: disabled)")
	flag.IntVar(&o.churners, "churners", 0, "session-replacement generators (0: soak default)")
	flag.DurationVar(&o.churnEvery, "churn-every", 0, "per-churner replacement pacing (0: soak default)")
	flag.IntVar(&o.publishers, "publishers", 0, "version-bump generators (0: soak default)")
	flag.DurationVar(&o.publishEvery, "publish-every", 0, "per-publisher pacing (0: soak default)")
	flag.Int64Var(&o.seed, "seed", 0, "generator seed (0: fixed default)")
	flag.Uint64Var(&o.minEvictions, "min-evictions", 1, "fail unless at least this many evictions occurred (0: don't check)")
	flag.BoolVar(&o.quick, "quick", false, "small smoke configuration (5000 sessions, 3s)")
	flag.BoolVar(&o.jsonOut, "json", false, "write the structured result to -out")
	flag.StringVar(&o.out, "out", "BENCH_watchd.json", "path of the -json artifact")
	flag.StringVar(&o.trace, "trace", "", "record the run in the flight recorder and write the event stream to this file")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve expvar-style metrics at http://<addr>/debug/vars during the soak")
	flag.Parse()

	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if flag.NArg() > 0 {
		usageError(fmt.Sprintf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}
	if err := o.validate(set); err != nil {
		usageError(err.Error())
	}
	os.Exit(run(o.resolve(), os.Stdout))
}

// usageError reports a flag error and exits with the usage status.
func usageError(msg string) {
	fmt.Fprintf(os.Stderr, "watchd: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}

// run executes one soak and reports the verdict as an exit code. It is
// main minus flag parsing and os.Exit, so tests drive it directly.
func run(o options, w *os.File) int {
	fmt.Fprintf(w, "watchd soak: %d sessions for %v (max-idle %d)\n", o.sessions, o.duration, o.maxIdle)

	// The recorder must be active before the daemon is built: monitors
	// bind their rings at construction.
	var rec *obs.Recorder
	if o.trace != "" {
		rec = obs.Start(obs.DefaultRingSize)
	}
	var reg *obs.Registry
	if o.metricsAddr != "" {
		reg = obs.NewRegistry()
		ln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "watchd: metrics listener: %v\n", err)
			return 1
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", reg)
		go http.Serve(ln, mux) //nolint:errcheck // dies with the process
		fmt.Fprintf(w, "[metrics at http://%s/debug/vars]\n", ln.Addr())
	}

	scfg := o.soakConfig()
	if reg != nil {
		scfg.OnDaemon = func(d *watchd.Daemon) { registerGauges(reg, d, rec) }
	}

	start := time.Now()
	res, soakErr := watchd.Soak(scfg)

	if rec != nil {
		obs.Stop()
		events := rec.Events()
		if err := obs.WriteFile(o.trace, events, rec.Drops()); err != nil {
			fmt.Fprintf(os.Stderr, "watchd: write trace %s: %v\n", o.trace, err)
			return 1
		}
		fmt.Fprintf(w, "[wrote %s: %d events, %d rings, %d drops]\n",
			o.trace, len(events), len(rec.Rings()), rec.Drops())
	}
	fmt.Fprintf(w, "sustained %d–%d sessions; published %d, churned %d, in %v\n",
		res.SustainedMin, res.SustainedMax, res.Published, res.Churned,
		time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(w, "%s\n", res.Stats.String())

	code := 0
	if soakErr != nil {
		fmt.Fprintf(os.Stderr, "watchd: FAILED: %v\n", soakErr)
		code = 1
	}
	if o.minEvictions > 0 && res.Stats.Evicted < o.minEvictions {
		fmt.Fprintf(os.Stderr, "watchd: FAILED: %d evictions, want at least %d (eviction pressure not exercised)\n",
			res.Stats.Evicted, o.minEvictions)
		code = 1
	}
	if o.jsonOut {
		var rep report
		rep.Config.Sessions = o.sessions
		rep.Config.DurationNs = int64(o.duration)
		rep.Config.Keys = o.keys
		rep.Config.Shards = o.shards
		rep.Config.MaxIdle = o.maxIdle
		rep.Config.MaxSessions = o.maxSessions
		rep.Config.IdleExpiryNs = int64(o.idleExpiry)
		rep.Config.Churners = o.churners
		rep.Config.Publishers = o.publishers
		rep.Config.Seed = o.seed
		rep.Config.MinEvictions = o.minEvictions
		rep.Result = res
		if soakErr != nil {
			rep.Error = soakErr.Error()
		}
		if err := writeJSON(o.out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "watchd: %v\n", err)
			return 1
		}
		fmt.Fprintf(w, "[wrote %s]\n", o.out)
	}
	if code == 0 {
		fmt.Fprintf(w, "PASS: drained clean (p50=%v p99=%v p999=%v)\n",
			res.Stats.WakeToClaim.P50(), res.Stats.WakeToClaim.P99(), res.Stats.WakeToClaim.P999())
	}
	return code
}

// registerGauges exposes the daemon's live population and counters (and
// the flight recorder's ring accounting, when tracing) as sampled-on-read
// metrics variables; the daemon outlives its Close for reads, so the
// gauges stay valid for the whole process.
func registerGauges(reg *obs.Registry, d *watchd.Daemon, rec *obs.Recorder) {
	reg.Register("watchd.keys", func() any { return d.NumKeys() })
	reg.Register("watchd.active_sessions", func() any { return d.ActiveSessions() })
	reg.Register("watchd.armed_sessions", func() any { return d.ArmedSessions() })
	reg.Register("watchd.waiting", func() any { return d.Waiting() })
	reg.Register("watchd.stats", func() any { return d.Stats() })
	if rec != nil {
		reg.Register("obs.ring_writes", func() any { return rec.Writes() })
		reg.Register("obs.ring_drops", func() any { return rec.Drops() })
	}
}

// writeJSON marshals v into path. A missing artifact is a broken
// contract with CI, so the error propagates to a non-zero exit.
func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", path, err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}
