package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// base is a valid flag set tests perturb one field at a time.
func base() options {
	return options{
		sessions: 1000,
		duration: time.Second,
		out:      "BENCH_watchd.json",
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		set     map[string]bool
		wantErr string // empty means valid
	}{
		{name: "defaults valid", mutate: func(o *options) {}},
		{name: "quick alone valid", mutate: func(o *options) { o.quick = true }},
		{name: "quick vs sessions", mutate: func(o *options) { o.quick = true },
			set: map[string]bool{"sessions": true}, wantErr: "-quick"},
		{name: "quick vs duration", mutate: func(o *options) { o.quick = true },
			set: map[string]bool{"duration": true}, wantErr: "-quick"},
		{name: "zero sessions", mutate: func(o *options) { o.sessions = 0 }, wantErr: "-sessions"},
		{name: "negative duration", mutate: func(o *options) { o.duration = -time.Second }, wantErr: "-duration"},
		{name: "negative keys", mutate: func(o *options) { o.keys = -1 }, wantErr: "-keys"},
		{name: "negative shards", mutate: func(o *options) { o.shards = -4 }, wantErr: "-keys and -shards"},
		{name: "negative max-idle", mutate: func(o *options) { o.maxIdle = -1 }, wantErr: "-max-idle"},
		{name: "negative max-sessions", mutate: func(o *options) { o.maxSessions = -1 }, wantErr: "-max-sessions"},
		{name: "limit below fill", mutate: func(o *options) { o.maxSessions = 10 }, wantErr: "reject the initial fill"},
		{name: "limit above fill valid", mutate: func(o *options) { o.maxSessions = 2000 }},
		{name: "negative churners", mutate: func(o *options) { o.churners = -2 }, wantErr: "-churners"},
		{name: "negative pacing", mutate: func(o *options) { o.publishEvery = -time.Millisecond }, wantErr: "-publish-every"},
		{name: "empty out", mutate: func(o *options) { o.out = "" }, wantErr: "-out"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := base()
			tc.mutate(&o)
			err := o.validate(tc.set)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestResolve(t *testing.T) {
	o := base()
	o.quick = true
	r := o.resolve()
	if r.sessions != 5000 || r.duration != 3*time.Second {
		t.Errorf("quick resolved to %d sessions / %v", r.sessions, r.duration)
	}
	// Default eviction pressure: max-idle derives to 7/8 of the population.
	if want := r.sessions - r.sessions/8; r.maxIdle != want {
		t.Errorf("derived maxIdle = %d, want %d", r.maxIdle, want)
	}
	// An explicit threshold survives resolution untouched.
	o = base()
	o.maxIdle = 999999
	if r := o.resolve(); r.maxIdle != 999999 {
		t.Errorf("explicit maxIdle overridden to %d", r.maxIdle)
	}
}

func TestSoakConfigMapping(t *testing.T) {
	o := options{
		sessions: 123, duration: 7 * time.Second,
		keys: 64, shards: 4, maxIdle: 100, maxSessions: 200,
		churners: 3, churnEvery: time.Millisecond,
		publishers: 5, publishEvery: 2 * time.Millisecond, seed: 42,
	}
	c := o.soakConfig()
	if c.Sessions != 123 || c.Duration != 7*time.Second || c.Seed != 42 ||
		c.Churners != 3 || c.ChurnEvery != time.Millisecond ||
		c.Publishers != 5 || c.PublishEvery != 2*time.Millisecond {
		t.Errorf("soak fields lost: %+v", c)
	}
	if c.Daemon.Keys != 64 || c.Daemon.Shards != 4 ||
		c.Daemon.MaxIdle != 100 || c.Daemon.MaxSessions != 200 {
		t.Errorf("daemon fields lost: %+v", c.Daemon)
	}
}

// TestRunSmoke drives run() end to end at a tiny scale: the soak must
// pass, evictions must occur under the derived max-idle pressure, and
// the -json artifact must round-trip with a populated histogram.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke is not short")
	}
	o := base()
	o.sessions = 400
	o.duration = 600 * time.Millisecond
	o.minEvictions = 1
	o.jsonOut = true
	o.out = filepath.Join(t.TempDir(), "BENCH_watchd.json")
	o = o.resolve()
	if code := run(o, os.Stdout); code != 0 {
		t.Fatalf("run() = %d, want 0", code)
	}
	raw, err := os.ReadFile(o.out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if rep.Error != "" {
		t.Errorf("artifact records an error: %s", rep.Error)
	}
	if rep.Result.Stats.Evicted < 1 {
		t.Errorf("no evictions under max-idle %d with %d sessions", o.maxIdle, o.sessions)
	}
	if rep.Result.Stats.WakeToClaim.Count() == 0 || rep.Result.Stats.WakeToClaim.P50() <= 0 {
		t.Errorf("artifact histogram empty: %s", rep.Result.Stats.WakeToClaim.String())
	}
	if rep.Result.LeakedGoroutines != 0 || rep.Result.ResidualWaiters != 0 {
		t.Errorf("leaks recorded: %d goroutines, %d waiters",
			rep.Result.LeakedGoroutines, rep.Result.ResidualWaiters)
	}
}

// TestRunEnforcesEvictionFloor pins the exit code: a run whose eviction
// pressure is disabled must fail the -min-evictions gate.
func TestRunEnforcesEvictionFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke is not short")
	}
	o := base()
	o.sessions = 64
	o.duration = 150 * time.Millisecond
	o.maxIdle = 1 << 20 // far above the population: evictor never fires
	o.minEvictions = 1
	if code := run(o, os.Stdout); code != 1 {
		t.Fatalf("run() = %d, want 1 (eviction floor unmet)", code)
	}
}
