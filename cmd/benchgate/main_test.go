package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
)

func TestGateTolerance(t *testing.T) {
	base := map[string]float64{
		"fig8/autosynch/2":   0.010,
		"fig8/autosynch/4":   0.010,
		"fig8/baseline/2":    0.004, // below floor: never compared
		"fig9/autosynch/2":   0.010, // missing from current: never compared
		"fig10/autosynch/2":  0.010, // sentinel in current: never compared
		"wake-policy/p99/16": 100.0,
	}
	current := map[string]float64{
		"fig8/autosynch/2":   0.029, // 2.9x: within the 3x band
		"fig8/autosynch/4":   0.031, // 3.1x: regression
		"fig8/baseline/2":    9.999,
		"fig10/autosynch/2":  -1,
		"wake-policy/p99/16": 90.0, // improvements never fail
		"fig99/new/2":        5.0,  // not in baseline: never compared
	}
	compared, skipped, regs := gate(base, current, 3.0, 0.005)
	if compared != 3 {
		t.Errorf("compared = %d, want 3", compared)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2 (floor + sentinel)", skipped)
	}
	if len(regs) != 1 || regs[0].key != "fig8/autosynch/4" {
		t.Fatalf("regressions = %+v, want exactly fig8/autosynch/4", regs)
	}
}

func TestCollectFlattensFigureReports(t *testing.T) {
	dir := t.TempDir()
	rep := harness.Report{
		ID: "fig8",
		Figure: &harness.Figure{
			ID: "fig8", XS: []int{2, 4},
			Series: []harness.Series{
				{Label: "autosynch", Points: []float64{0.1, 0.2}},
				{Label: "explicit", Points: []float64{0.3}}, // short series: only x=2
			},
		},
	}
	writeFile := func(name string, v any) {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("BENCH_fig8.json", rep)
	writeFile("BENCH_watchd.json", map[string]any{"config": map[string]any{}, "result": map[string]any{}})
	writeFile("BENCH_baseline.json", baselineFile{Values: map[string]float64{"x/y/1": 1}})
	if err := os.WriteFile(filepath.Join(dir, "BENCH_garbage.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	values, files, err := collect(dir, "BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if files != 1 {
		t.Errorf("files = %d, want 1 (watchd, garbage, and the baseline are skipped)", files)
	}
	want := map[string]float64{
		"fig8/autosynch/2": 0.1,
		"fig8/autosynch/4": 0.2,
		"fig8/explicit/2":  0.3,
	}
	if len(values) != len(want) {
		t.Fatalf("values = %v, want %v", values, want)
	}
	for k, v := range want {
		if values[k] != v {
			t.Errorf("values[%q] = %v, want %v", k, values[k], v)
		}
	}
}
