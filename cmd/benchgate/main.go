// Command benchgate is the benchstat-style perf gate for the experiment
// artifacts: it flattens the BENCH_<experiment>.json reports that
// autosynch-bench -json writes into {"experiment/series/x": value} pairs
// and compares them against a checked-in baseline, failing only on
// order-of-magnitude regressions.
//
// Usage:
//
//	autosynch-bench -experiment all -quick -json
//	benchgate -write              # record the current run as the baseline
//	benchgate                     # gate the current run against it
//
// Only keys present in BOTH the baseline and the current run are
// compared, so adding or removing an experiment never trips the gate;
// and because CI machines, -quick budgets, and schedulers differ between
// the machine that recorded the baseline and the one checking it, the
// default tolerance is deliberately loose — a point fails only when it
// is several times its baseline, which catches a broken relay search or
// an accidental broadcast storm, not ordinary jitter. Points below the
// noise floor (sub-millisecond quick-run values) are skipped entirely.
//
// Exit status: 0 when every compared point is within tolerance, 1 on a
// regression or missing input, 2 on a usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/harness"
)

// baselineFile is the checked-in artifact: a flat map so diffs are
// line-per-point and the gate's input is greppable.
type baselineFile struct {
	Note   string             `json:"note,omitempty"`
	Values map[string]float64 `json:"values"`
}

func main() {
	var (
		dir       = flag.String("dir", ".", "directory holding the BENCH_<experiment>.json reports")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline file to write (-write) or gate against")
		write     = flag.Bool("write", false, "record the current reports as the new baseline instead of gating")
		tolerance = flag.Float64("tolerance", 3.0, "fail a point only when current > tolerance x baseline")
		floor     = flag.Float64("floor", 0.005, "skip points whose baseline value is below this (noise)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: unexpected arguments: %s\n", strings.Join(flag.Args(), " "))
		flag.Usage()
		os.Exit(2)
	}
	if *tolerance <= 1 {
		fmt.Fprintf(os.Stderr, "benchgate: -tolerance must exceed 1, got %v\n", *tolerance)
		flag.Usage()
		os.Exit(2)
	}

	current, files, err := collect(*dir, *baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no figure-shaped BENCH_*.json reports in %s (run autosynch-bench -json first)\n", *dir)
		os.Exit(1)
	}

	if *write {
		bf := baselineFile{
			Note:   fmt.Sprintf("recorded by benchgate -write from %d reports; values are figure points (runtime seconds, latency µs, or counts) keyed experiment/series/x", files),
			Values: current,
		}
		raw, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: marshal baseline: %v\n", err)
			os.Exit(1)
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*baseline, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: wrote %s (%d points from %d reports)\n", *baseline, len(current), files)
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v (record one with -write)\n", err)
		os.Exit(1)
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parse %s: %v\n", *baseline, err)
		os.Exit(1)
	}

	compared, skipped, regressions := gate(bf.Values, current, *tolerance, *floor)
	for _, r := range regressions {
		fmt.Printf("REGRESSION %-40s baseline %.4g -> current %.4g (%.2fx > %.2fx)\n",
			r.key, r.base, r.cur, r.cur/r.base, *tolerance)
	}
	fmt.Printf("benchgate: %d points compared, %d below floor or sentinel, %d regressions (tolerance %.2fx)\n",
		compared, skipped, len(regressions), *tolerance)
	if len(regressions) > 0 {
		os.Exit(1)
	}
}

// collect flattens every figure-shaped report in dir into key->value
// pairs; reports without a structured figure (text-only experiments,
// problem runs, the watchd artifact, the baseline itself) are skipped.
func collect(dir, baselinePath string) (map[string]float64, int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, 0, err
	}
	values := make(map[string]float64)
	files := 0
	for _, path := range paths {
		if filepath.Base(path) == filepath.Base(baselinePath) {
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		var rep harness.Report
		if err := json.Unmarshal(raw, &rep); err != nil || rep.ID == "" || rep.Figure == nil {
			continue // not a figure-shaped experiment report
		}
		n := flatten(values, rep)
		if n > 0 {
			files++
		}
	}
	return values, files, nil
}

// flatten adds one report's figure points under experiment/series/x keys
// and returns how many it added.
func flatten(into map[string]float64, rep harness.Report) int {
	added := 0
	for _, s := range rep.Figure.Series {
		for i, x := range rep.Figure.XS {
			if i >= len(s.Points) {
				break
			}
			into[fmt.Sprintf("%s/%s/%d", rep.ID, s.Label, x)] = s.Points[i]
			added++
		}
	}
	return added
}

// regression is one point outside the tolerance band.
type regression struct {
	key       string
	base, cur float64
}

// gate compares the shared keys of baseline and current. Points whose
// baseline is below floor are noise; non-positive values are the
// harness's conservation-failure sentinel (or an empty point) and are
// never compared — conservation is the test suite's job, not the perf
// gate's.
func gate(base, current map[string]float64, tolerance, floor float64) (compared, skipped int, regs []regression) {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k]
		c, ok := current[k]
		if !ok {
			continue
		}
		if b <= floor || c <= 0 {
			skipped++
			continue
		}
		compared++
		if c > tolerance*b {
			regs = append(regs, regression{key: k, base: b, cur: c})
		}
	}
	return compared, skipped, regs
}
