// The H2O (water building) problem (§6.3.1 of the paper): hydrogen
// threads offer atoms and wait to be bonded; an oxygen thread waits for
// two hydrogens and forms a molecule. The synchronization uses only
// shared predicates, so every waituntil condition is registered once and
// reused for the whole run — the workload where automatic signaling
// matches explicit signaling step for step.
//
// Termination is part of the conditional synchronization: a hydrogen
// waits for "hBonded > 0 || done", so when the oxygen finishes its last
// molecule and sets done, the relay chain releases every straggler, which
// retracts its unpaired offer and leaves.
//
// Run with:
//
//	go run ./examples/h2o
package main

import (
	"fmt"
	"sync"

	autosynch "repro"
)

func main() {
	const (
		hydrogens = 16
		molecules = 2000
	)
	m := autosynch.New()
	hAvail := m.NewInt("hAvail", 0)
	hBonded := m.NewInt("hBonded", 0)
	done := m.NewBool("done", false)

	var consumed int64
	var mu sync.Mutex

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the oxygen thread
		defer wg.Done()
		for w := 0; w < molecules; w++ {
			m.Enter()
			if err := m.Await("hAvail >= 2"); err != nil {
				panic(err)
			}
			hAvail.Add(-2)
			hBonded.Add(2)
			m.Exit()
		}
		m.Do(func() { done.Set(true) })
	}()
	for h := 0; h < hydrogens; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m.Enter()
				if done.Get() && hBonded.Get() == 0 {
					m.Exit()
					return
				}
				hAvail.Add(1)
				if err := m.Await("hBonded > 0 || done"); err != nil {
					panic(err)
				}
				if hBonded.Get() > 0 {
					hBonded.Add(-1)
					mu.Lock()
					consumed++
					mu.Unlock()
					m.Exit()
					continue
				}
				hAvail.Add(-1) // closing time: retract the unpaired offer
				m.Exit()
				return
			}
		}()
	}
	wg.Wait()

	s := m.Stats()
	fmt.Printf("built %d water molecules; %d hydrogen atoms bonded\n", molecules, consumed)
	fmt.Printf("signals=%d broadcasts=%d wakeups=%d futile=%d registrations=%d\n",
		s.Signals, s.Broadcasts, s.Wakeups, s.FutileWakeups, s.Registrations)
	m.Do(func() {
		if hAvail.Get() != 0 || hBonded.Get() != 0 {
			panic("atoms left over")
		}
	})
	if consumed != 2*molecules {
		panic("bonding slots leaked")
	}
	fmt.Println("only three predicates were ever registered: hAvail >= 2, hBonded > 0 || done, and the fast paths.")
}
