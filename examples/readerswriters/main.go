// Readers/writers with ticket ordering (§6.3.2 of the paper, following
// Buhr & Harji): arrivals are served strictly in ticket order, readers
// overlap, writers are exclusive. Each waiter's predicate mentions its own
// ticket — a thread-local variable — so this example shows globalization
// at work: other threads evaluate "serving == t && !writing" on the
// waiter's behalf with t already frozen to the arrival-time value.
//
// Run with:
//
//	go run ./examples/readerswriters
package main

import (
	"fmt"
	"sync"

	autosynch "repro"
)

// RWLock is a fair (arrival-order) readers/writers lock built on an
// automatic-signal monitor. No condition variables, no signals.
type RWLock struct {
	mon     *autosynch.Monitor
	tickets *autosynch.IntCell
	serving *autosynch.IntCell
	readers *autosynch.IntCell
	writing *autosynch.BoolCell
}

// NewRWLock constructs the lock.
func NewRWLock() *RWLock {
	l := &RWLock{mon: autosynch.New()}
	l.tickets = l.mon.NewInt("tickets", 0)
	l.serving = l.mon.NewInt("serving", 0)
	l.readers = l.mon.NewInt("activeReaders", 0)
	l.writing = l.mon.NewBool("writing", false)
	return l
}

// RLock admits the caller as a reader, in arrival order.
func (l *RWLock) RLock() {
	l.mon.Enter()
	defer l.mon.Exit()
	t := l.tickets.Get()
	l.tickets.Add(1)
	if err := l.mon.Await("serving == t && !writing", autosynch.Bind("t", t)); err != nil {
		panic(err)
	}
	l.readers.Add(1)
	l.serving.Add(1) // the next ticket holder may now be admitted
}

// RUnlock releases a reader.
func (l *RWLock) RUnlock() {
	l.mon.Enter()
	defer l.mon.Exit()
	l.readers.Add(-1)
}

// Lock admits the caller as the exclusive writer, in arrival order.
func (l *RWLock) Lock() {
	l.mon.Enter()
	defer l.mon.Exit()
	t := l.tickets.Get()
	l.tickets.Add(1)
	if err := l.mon.Await("serving == t && !writing && activeReaders == 0",
		autosynch.Bind("t", t)); err != nil {
		panic(err)
	}
	l.writing.Set(true)
	l.serving.Add(1)
}

// Unlock releases the writer.
func (l *RWLock) Unlock() {
	l.mon.Enter()
	defer l.mon.Exit()
	l.writing.Set(false)
}

func main() {
	const (
		writers   = 3
		readers   = 12
		opsEach   = 200
		dataWords = 8
	)
	l := NewRWLock()
	data := make([]int, dataWords) // protected by the RWLock
	version := 0

	var wg sync.WaitGroup
	torn := 0
	var tornMu sync.Mutex

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				l.Lock()
				version++
				for j := range data {
					data[j] = version // every word carries the version
				}
				l.Unlock()
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				l.RLock()
				v := data[0]
				consistent := true
				for j := range data {
					if data[j] != v {
						consistent = false
					}
				}
				l.RUnlock()
				if !consistent {
					tornMu.Lock()
					torn++
					tornMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	s := l.mon.Stats()
	fmt.Printf("writes=%d reads=%d torn-reads=%d\n", writers*opsEach, readers*opsEach, torn)
	fmt.Printf("signals=%d wakeups=%d futile=%d registrations=%d reuses=%d\n",
		s.Signals, s.Wakeups, s.FutileWakeups, s.Registrations, s.Reuses)
	if torn != 0 {
		panic("writer exclusion violated")
	}
	fmt.Println("every read saw a consistent snapshot; admission was in strict arrival order.")
}
