// Quickstart: the paper's Fig. 1 parameterized bounded buffer, written
// with waituntil-style predicates instead of condition variables.
//
// Producers put batches of random size, consumers take batches of the
// same sizes, and nobody ever calls signal or signalAll: the runtime's
// relay signaling wakes exactly the threads whose conditions have become
// true.
//
// The waiting conditions are compiled once, at setup: Put's through the
// typed predicate builder, Take's from a predicate string — both lower to
// the same compiled representation, so each wait only binds its
// thread-local batch size and enqueues. (Monitor.Await("…") with a string
// per call also works and consults the same predicate cache; compiling
// ahead just keeps even the cache lookup off the hot path.)
//
// The second act is select multiplexing: one dispatcher goroutine drains
// TWO independent buffers at once by arming a wait handle on each
// (Predicate.Arm) and selecting over the Ready channels — no goroutine is
// parked per waiter; the relay signal lands on a channel instead. That is
// the pattern a server multiplexing many resources scales with (see the
// `dispatcher` scenario and BenchmarkMultiplexedWaiters for the 1024-way
// version).
//
// The second act's Take also shows the guarded-region form: the whole
// enter / waituntil / mutate / exit unit as one value (Monitor.When →
// Guard.Do), with the unlock guaranteed even if the body panics.
//
// The third act is sharding: one monitor is one lock and one condition
// manager, and the relay search on every exit considers every waiting
// condition registered with it — tags prune within a condition's group,
// not across groups, so a monitor carrying hundreds of independent
// waiters pays a sweep per exit however good the tags are. When state
// and waiters partition by key, a Sharded monitor splits them across S
// inner monitors (each with its own lock, condition manager, and tag
// index): keyed operations on different shards run concurrently, relay
// invariance holds per shard exactly as before, and genuinely global
// conditions ("total free slots across ALL shards ≥ n") live on an
// AggregateCounter — per-shard deltas batch under the shard lock and
// publish to a small summary monitor, where the bound is an ordinary
// threshold-tagged predicate. The sharded-kv, striped-semaphore, and
// work-stealing-pool scenarios plus BenchmarkShardScaling are the
// full-size versions.
//
// The fourth act is guarded regions and selective waiting: When reifies
// the conditional critical region as a first-class Guard, and Select
// waits on guards spanning DIFFERENT monitors at once — parking the
// goroutine a single time, claiming the first predicate to become true,
// running the winning body under that monitor, and cancelling the losers
// with no leaked waiters. SelectOrdered makes the case order a priority
// order and Default makes the whole thing non-blocking, exactly like a
// select statement. The `selective-server` scenario and BenchmarkSelect
// are the full-size versions.
//
// Where these patterns end up at production scale is `cmd/watchd`: a
// watch-service daemon holding 10⁵+ keyed sessions as armed handles
// over a Sharded monitor (no goroutine per session), with admission
// control, LRU eviction, and p50/p99/p999 wake-to-claim histograms —
// `go run ./cmd/watchd -quick` soaks it and verifies a leak-free drain.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"sync"

	autosynch "repro"
)

// BoundedBuffer is the automatic-signal version of Fig. 1: compare the
// explicit-signal Java on the figure's left, with its two condition
// variables and signalAll calls.
type BoundedBuffer struct {
	mon   *autosynch.Monitor
	buf   []int
	put   int
	take  int
	count *autosynch.IntCell

	hasRoom  *autosynch.Predicate // waituntil(count + k <= cap)
	hasItems *autosynch.Predicate // waituntil(count >= num)
}

// NewBoundedBuffer creates a buffer with capacity n.
func NewBoundedBuffer(n int) *BoundedBuffer {
	b := &BoundedBuffer{mon: autosynch.New(), buf: make([]int, n)}
	b.count = b.mon.NewInt("count", 0)
	capacity := b.mon.NewInt("cap", int64(n))

	// Typed builder form: no strings, the cells themselves spell the
	// condition.
	b.hasRoom = b.mon.MustCompileExpr(
		b.count.Expr().Plus(autosynch.Local("k")).AtMost(capacity.Expr()))
	// String form: compiles to the same representation.
	b.hasItems = b.mon.MustCompile("count >= num")
	return b
}

// Put stores items, waiting until the buffer has room for all of them.
func (b *BoundedBuffer) Put(items []int) {
	b.mon.Enter()
	defer b.mon.Exit()
	// waituntil(count + k <= cap)
	if err := b.hasRoom.Await(autosynch.Bind("k", int64(len(items)))); err != nil {
		panic(err)
	}
	for _, it := range items {
		b.buf[b.put] = it
		b.put = (b.put + 1) % len(b.buf)
	}
	b.count.Add(int64(len(items)))
}

// Take removes and returns num items, waiting until they exist. It is
// written as a guarded region: When packages enter + waituntil + exit
// into one unit, and Do runs the body inside the monitor with the
// predicate true — the unlock is deferred, so even a panicking body
// cannot leak the lock. (Put above spells the same structure by hand.)
func (b *BoundedBuffer) Take(num int) []int {
	out := make([]int, num)
	// waituntil(count >= num)
	err := b.mon.When(b.hasItems, autosynch.Bind("num", int64(num))).Do(func() {
		for i := range out {
			out[i] = b.buf[b.take]
			b.take = (b.take + 1) % len(b.buf)
		}
		b.count.Add(int64(-num))
	})
	if err != nil {
		panic(err)
	}
	return out
}

func main() {
	const (
		producers = 4
		consumers = 4
		batches   = 500
	)
	b := NewBoundedBuffer(64)

	// Producers announce each batch size on a channel; consumers take
	// exactly those sizes, so production and consumption balance and the
	// program terminates deterministically.
	sizes := make(chan int, producers*batches)
	var produced, consumed int64
	var mu sync.Mutex

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(seed int64) {
			defer pwg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < batches; i++ {
				n := rng.Intn(16) + 1
				b.Put(make([]int, n))
				mu.Lock()
				produced += int64(n)
				mu.Unlock()
				sizes <- n
			}
		}(int64(p))
	}
	go func() { pwg.Wait(); close(sizes) }()

	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for n := range sizes {
				b.Take(n)
				mu.Lock()
				consumed += int64(n)
				mu.Unlock()
			}
		}()
	}
	cwg.Wait()

	s := b.mon.Stats()
	fmt.Printf("produced %d items, consumed %d items, left in buffer %d\n",
		produced, consumed, produced-consumed)
	fmt.Printf("signals=%d broadcasts=%d wakeups=%d futile=%d\n",
		s.Signals, s.Broadcasts, s.Wakeups, s.FutileWakeups)
	if s.Broadcasts != 0 {
		panic("AutoSynch must never broadcast")
	}
	fmt.Println("no signal or signalAll call appears anywhere in this program.")

	dispatchDemo()
	shardedDemo()
	selectiveDemo()
}

// dispatchDemo multiplexes two buffers from one goroutine with armed wait
// handles: the select-composable face of the same waituntil predicates.
func dispatchDemo() {
	const items = 200
	a, b := NewBoundedBuffer(8), NewBoundedBuffer(8)

	// Two producers fill their own buffers; nobody consumes but the
	// dispatcher below.
	for _, buf := range []*BoundedBuffer{a, b} {
		go func(buf *BoundedBuffer) {
			for i := 0; i < items; i++ {
				buf.Put([]int{i})
			}
		}(buf)
	}

	// notEmpty is a shared (local-free) predicate: compiled once per
	// buffer, armed over and over. Arm registers the waiter without
	// parking a goroutine; Ready fires when relay signaling finds it
	// true; Claim re-enters the monitor, re-validates, and hands the
	// monitor over.
	notEmptyA := a.mon.MustCompile("count >= 1")
	notEmptyB := b.mon.MustCompile("count >= 1")
	wa, wb := notEmptyA.Arm(), notEmptyB.Arm()
	var fromA, fromB int
	for fromA+fromB < 2*items {
		select {
		case <-wa.Ready():
			if err := wa.Claim(); err == nil { // monitor held, count >= 1
				a.takeOneLocked()
				a.mon.Exit()
				fromA++
				wa = notEmptyA.Arm()
			} else if err != autosynch.ErrNotReady {
				panic(err) // ErrNotReady re-armed wa; anything else is a bug
			}
		case <-wb.Ready():
			if err := wb.Claim(); err == nil {
				b.takeOneLocked()
				b.mon.Exit()
				fromB++
				wb = notEmptyB.Arm()
			} else if err != autosynch.ErrNotReady {
				panic(err)
			}
		}
	}
	wa.Cancel()
	wb.Cancel()
	fmt.Printf("dispatcher drained %d+%d items from two buffers with one goroutine and zero parked waiters\n",
		fromA, fromB)
}

// takeOneLocked removes one item; the caller holds the monitor with
// count >= 1 (a successful Claim).
func (b *BoundedBuffer) takeOneLocked() {
	b.take = (b.take + 1) % len(b.buf)
	b.count.Add(-1)
}

// shardedDemo is a miniature striped resource pool: 4 shards each hold a
// "slots" cell, keyed borrowers take from their key's shard, and one
// goroutine waits on the CROSS-SHARD aggregate "total free ≥ 6" — a
// condition no single shard can express — through an AggregateCounter.
func shardedDemo() {
	const shards = 4
	slots := make([]*autosynch.IntCell, shards)
	sm := autosynch.NewSharded(shards,
		autosynch.WithShardSetup(func(s int, m *autosynch.Monitor) {
			slots[s] = m.NewInt("slots", 0) // pool starts empty
		}))
	// "slots >= 1" compiles once per shard; waits route by key.
	available := sm.MustCompile("slots >= 1")
	// The aggregate: shard-local deltas batch (threshold 2) and publish
	// into the counter's summary monitor, where "total >= n" is an
	// ordinary threshold-tagged predicate.
	free := sm.NewCounter("free", 2)

	// A filler drips two slots into every shard. Filling is a per-shard
	// maintenance sweep, so it addresses shards by index (DoShard) — keys
	// hash, so "one key per shard" would NOT visit every shard.
	go func() {
		for round := 0; round < 2; round++ {
			for s := 0; s < shards; s++ {
				sm.DoShard(s, func(*autosynch.Monitor) {
					slots[s].Add(1)
					free.Add(s, 1)
				})
			}
		}
	}()

	// A keyed borrower parks shard-locally: only its shard's exits are
	// considered for its wake-up, not the other shards' traffic.
	borrowed := make(chan int)
	go func() {
		key := autosynch.ShardStringKey("user:42")
		sm.Enter(key)
		if err := sm.AwaitPred(key, available); err != nil {
			panic(err)
		}
		slots[sm.Index(key)].Add(-1)
		free.Add(sm.Index(key), -1)
		sm.Exit(key)
		borrowed <- sm.Index(key)
	}()

	// The aggregate waiter escalates to the summary monitor: Watch-then-
	// flush inside AwaitAtLeast guarantees the batched deltas cannot hide
	// the bound from it.
	if err := free.AwaitAtLeast(6); err != nil {
		panic(err)
	}
	from := <-borrowed
	// The aggregate waiter parked on the counter's summary monitor, so
	// merge its stats too — exactly how the sharded scenarios report.
	s := sm.Stats().Add(free.Summary().Stats())
	fmt.Printf("sharded pool: aggregate reached %d free (published in %d batches), borrower took a slot from shard %d\n",
		free.Total(), free.Publishes(), from)
	fmt.Printf("merged shard stats: signals=%d broadcasts=%d wakeups=%d; per-shard waiters now %v\n",
		s.Signals, s.Broadcasts, s.Wakeups, sm.WaitingByShard())
	if s.Broadcasts != 0 {
		panic("sharded AutoSynch must never broadcast either")
	}
}

// selectiveDemo is a miniature selective server: two request classes on
// SEPARATE monitors (gold outranks bronze), one server goroutine waiting
// on both with a single SelectOrdered — no goroutine per class, the
// winning batch served under that class's own lock, priority whenever
// both classes are ready at once.
func selectiveDemo() {
	const requests = 150
	gold, bronze := autosynch.New(), autosynch.New()
	goldQ := gold.NewInt("q", 0)
	bronzeQ := bronze.NewInt("q", 0)
	gold.NewInt("cap", 8)
	bronze.NewInt("cap", 8)
	// Each class's admission and service predicates live on its own
	// monitor; the guards below are reusable values.
	goldRoom := gold.When(gold.MustCompile("q < cap"))
	bronzeRoom := bronze.When(bronze.MustCompile("q < cap"))
	hasGold := gold.When(gold.MustCompile("q > 0"))
	hasBronze := bronze.When(bronze.MustCompile("q > 0"))

	for _, c := range []struct {
		room *autosynch.Guard
		q    *autosynch.IntCell
	}{{goldRoom, goldQ}, {bronzeRoom, bronzeQ}} {
		go func(room *autosynch.Guard, q *autosynch.IntCell) {
			for i := 0; i < requests; i++ {
				// The guarded region: enter, waituntil(q < cap), enqueue,
				// exit — one call, panic-safe.
				if err := room.Do(func() { q.Add(1) }); err != nil {
					panic(err)
				}
			}
		}(c.room, c.q)
	}

	var servedGold, servedBronze, goldWins, selections int64
	for servedGold+servedBronze < 2*requests {
		selections++
		// Case order is priority order: when both queues are non-empty at
		// a decision point, gold is served first. A lone ready bronze is
		// served immediately — priority never starves the only ready class.
		idx, err := autosynch.SelectOrdered(
			hasGold.Then(func() { servedGold += goldQ.Get(); goldQ.Set(0) }),
			hasBronze.Then(func() { servedBronze += bronzeQ.Get(); bronzeQ.Set(0) }),
		)
		if err != nil {
			panic(err)
		}
		if idx == 0 {
			goldWins++
		}
	}

	// Both queues are drained; a non-blocking Select (a Default case)
	// proves it without parking anything.
	idx, err := autosynch.Select(
		hasGold.Then(func() {}),
		hasBronze.Then(func() {}),
		autosynch.Default(func() {}),
	)
	if err != nil || idx != 2 {
		panic(fmt.Sprintf("queues not drained: case %d, err %v", idx, err))
	}
	fmt.Printf("selective server: served %d gold + %d bronze with one goroutine; gold won %d of %d selections; %d waiters left\n",
		servedGold, servedBronze, goldWins, selections, gold.Waiting()+bronze.Waiting())
}
