// Dining philosophers (§6.3.2 of the paper): each philosopher picks up
// both chopsticks atomically under the monitor, so no deadlock is
// possible, and waits on a static shared predicate naming its two
// chopsticks. The equivalence tags on the chopstick variables route each
// relay signal straight to an eligible neighbour.
//
// Run with:
//
//	go run ./examples/philosophers
package main

import (
	"fmt"
	"sync"

	autosynch "repro"
)

func main() {
	const (
		philosophers = 5
		meals        = 200
	)
	m := autosynch.New()
	sticks := make([]*autosynch.BoolCell, philosophers)
	for i := range sticks {
		sticks[i] = m.NewBool(fmt.Sprintf("c%d", i), false)
	}
	preds := make([]string, philosophers)
	for i := range preds {
		preds[i] = fmt.Sprintf("!c%d && !c%d", i, (i+1)%philosophers)
	}

	eaten := make([]int, philosophers)
	maxHeld := 0 // most chopsticks simultaneously in use (must stay even)
	oddHolds := 0

	var wg sync.WaitGroup
	for id := 0; id < philosophers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			left, right := id, (id+1)%philosophers
			for i := 0; i < meals; i++ {
				m.Enter()
				if err := m.Await(preds[id]); err != nil {
					panic(err)
				}
				sticks[left].Set(true)
				sticks[right].Set(true)
				held := 0
				for _, s := range sticks {
					if s.Get() {
						held++
					}
				}
				if held > maxHeld {
					maxHeld = held
				}
				if held%2 != 0 {
					oddHolds++
				}
				m.Exit()
				// think & eat (outside the monitor)
				m.Enter()
				sticks[left].Set(false)
				sticks[right].Set(false)
				eaten[id]++
				m.Exit()
			}
		}(id)
	}
	wg.Wait()

	s := m.Stats()
	fmt.Printf("meals per philosopher: %v\n", eaten)
	fmt.Printf("max chopsticks in use at once: %d (of %d); odd-held states: %d\n",
		maxHeld, philosophers, oddHolds)
	fmt.Printf("signals=%d broadcasts=%d wakeups=%d futile=%d\n",
		s.Signals, s.Broadcasts, s.Wakeups, s.FutileWakeups)
	for id, e := range eaten {
		if e != meals {
			panic(fmt.Sprintf("philosopher %d starved: %d meals", id, e))
		}
	}
	if oddHolds != 0 {
		panic("a philosopher held a single chopstick: pickup was not atomic")
	}
	fmt.Println("every philosopher ate every meal; chopsticks were always picked up in pairs.")
}
