// MiniSynch walk-through: buffer.ms (the paper's Fig. 1 monitor in the
// MiniSynch dialect) was translated by the preprocessor into
// buffer_gen.go — the role the JavaCC preprocessor plays in Fig. 2 of the
// paper. This program drives the generated monitor and then shows the
// translation pipeline end to end on a second monitor held in a string.
//
// Regenerate buffer_gen.go with `go generate ./examples/minisynch`, or
// directly:
//
//	go run ./cmd/minisynchc -pkg main examples/minisynch/buffer.ms
//
// Run with:
//
//	go run ./examples/minisynch
package main

//go:generate go run repro/cmd/minisynchc -pkg main buffer.ms

import (
	"fmt"
	"sync"

	"repro/internal/preproc"
)

// Constructor parameters are constructor-only scope in MiniSynch —
// function bodies see shared variables and their own parameters — so
// the limit is captured into a shared variable, as buffer.ms does with
// its capacity.
const gateSrc = `
monitor Gate(n int) {
    var inside int
    var limit int = n
    var open bool = true

    func Enter() {
        waituntil(open && inside < limit)
        inside += 1
    }
    func Leave() {
        inside -= 1
    }
    func SetOpen(b bool) {
        open = b
        waituntil(open == b)
    }
}
`

func main() {
	// Part 1: drive the checked-in generated monitor.
	b := NewBoundedBuffer(32)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Put(3)
			}
		}()
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Take(3)
			}
		}()
	}
	wg.Wait()
	s := b.MonitorStats()
	fmt.Printf("generated monitor moved %d items; size now %d\n", 4*200*3, b.Size())
	fmt.Printf("signals=%d broadcasts=%d wakeups=%d futile=%d\n\n",
		s.Signals, s.Broadcasts, s.Wakeups, s.FutileWakeups)
	if b.Size() != 0 || s.Broadcasts != 0 {
		panic("generated monitor misbehaved")
	}

	// Part 2: show the preprocessor pipeline on a second monitor.
	fmt.Println("translating the Gate monitor through the preprocessor:")
	fmt.Print(gateSrc)
	code, err := preproc.Generate(gateSrc, "gates")
	if err != nil {
		panic(err)
	}
	fmt.Println("generated Go:")
	fmt.Println(code)
}
