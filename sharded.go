package autosynch

import "repro/internal/shard"

// Sharded is a hash-partitioned automatic-signal monitor: protected state
// is split by key across inner monitors, each with its own lock,
// condition manager, and tag index, so operations on independent keys
// proceed in parallel and the relay search on every exit walks only one
// shard's predicate groups. Cross-shard conditions are expressed with an
// AggregateCounter. The keyed When/WhenFunc return Guards on the owning
// shard, so guarded regions of different keys — different inner
// monitors — compose with Select like guards of unrelated monitors. See
// the sharding section of the package documentation and internal/shard
// for details.
type Sharded = shard.Monitor

// ShardedPredicate is a waiting condition compiled once on every shard of
// a Sharded monitor (uniform cell names), routed by key at wait time.
type ShardedPredicate = shard.Predicate

// AggregateCounter is a cross-shard aggregate with batched epoch
// publication into a summary monitor; aggregate predicates ("total ≥ n")
// are ordinary compiled predicates there.
type AggregateCounter = shard.Counter

// ShardOption configures NewSharded.
type ShardOption = shard.Option

// NewSharded constructs a sharded automatic-signal monitor with n inner
// monitors.
func NewSharded(n int, opts ...ShardOption) *Sharded { return shard.New(n, opts...) }

// WithShardSetup declares each shard's cells (and compiles shard-resident
// predicates) at construction; fn runs once per shard.
func WithShardSetup(fn func(shard int, m *Monitor)) ShardOption { return shard.WithSetup(fn) }

// WithShardMonitorOptions passes core options (WithoutTagging,
// WithProfiling, …) to every inner monitor and to counter summaries.
func WithShardMonitorOptions(opts ...Option) ShardOption {
	return shard.WithMonitorOptions(opts...)
}

// ShardIndexFor is the pure key-routing function: the shard index key
// maps to among n shards (for computing cell ownership during setup).
func ShardIndexFor(key uint64, n int) int { return shard.IndexFor(key, n) }

// ShardStringKey hashes a string key into the sharded key space.
func ShardStringKey(s string) uint64 { return shard.StringKey(s) }
