package autosynch_test

import (
	"testing"

	"repro/internal/obs"
)

// BenchmarkObsNoParkWait prices the flight recorder against the hottest
// path in the repo: the compiled no-park await (the workload of
// BenchmarkAwaitStringVsCompiled/compiled). The disabled arm is the
// default state — monitors built with no active recorder carry a nil
// ring, so every would-be event site is one predictable branch — and
// must be indistinguishable from the pre-recorder baseline. The enabled
// arm pays two ring writes per operation (enter and exit) and bounds the
// cost of tracing a run:
//
//	go test -bench ObsNoParkWait -benchmem
func BenchmarkObsNoParkWait(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		if obs.Active() != nil {
			b.Fatal("recorder unexpectedly active")
		}
		benchAwaitMode(b, "compiled", false)
	})
	b.Run("enabled", func(b *testing.B) {
		obs.Start(obs.DefaultRingSize)
		defer obs.Stop()
		benchAwaitMode(b, "compiled", false)
	})
}

// TestObsDisabledNoParkGuard is the regression gate for the recorder's
// disabled path: the compiled no-park wait must stay allocation-free and
// under a ceiling that only an accidental per-event atomic, map lookup,
// or allocation would breach. The ceiling is deliberately generous —
// absolute nanoseconds on shared CI hardware are noisy — while the
// alloc assertion is exact. The enabled arm is measured alongside and
// logged, so the recorder's cost is visible in every test run without
// being load-bearing.
func TestObsDisabledNoParkGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarking is not short")
	}
	if obs.Active() != nil {
		t.Fatal("recorder unexpectedly active at test start")
	}
	disabled := testing.Benchmark(func(b *testing.B) { benchAwaitMode(b, "compiled", false) })
	if a := disabled.AllocsPerOp(); a != 0 {
		t.Errorf("obs-disabled no-park wait allocates %d allocs/op, want 0", a)
	}
	const ceilingNs = 2000 // seed measured ~47ns/op; anything near this is a structural regression
	if ns := disabled.NsPerOp(); ns > ceilingNs {
		t.Errorf("obs-disabled no-park wait costs %dns/op, want <= %dns/op", ns, ceilingNs)
	}

	obs.Start(obs.DefaultRingSize)
	enabled := testing.Benchmark(func(b *testing.B) { benchAwaitMode(b, "compiled", false) })
	obs.Stop()
	t.Logf("no-park wait: disabled %dns/op %dallocs/op, enabled %dns/op %dallocs/op",
		disabled.NsPerOp(), disabled.AllocsPerOp(), enabled.NsPerOp(), enabled.AllocsPerOp())
}
