package autosynch_test

import (
	"testing"
	"time"

	autosynch "repro"
	"repro/internal/problems"
	"repro/internal/testutil"
)

// benchTagShape parks waiters whose predicates share one shape and whose
// keys are unsatisfiable, then drives empty monitor operations. Every exit
// runs the relay search over the parked predicates, so the measured cost
// is exactly what predicate tagging prunes: an equivalence probe misses in
// O(1), a threshold heap stops at a false root, and untaggable predicates
// are evaluated exhaustively. A done flag releases the waiters afterwards.
func benchTagShape(b *testing.B, pred string) {
	b.Helper()
	const waiters = 32
	const driverOps = 2000
	m := autosynch.New()
	m.NewInt("x", 0) // stays 0: no key in 1..waiters is ever satisfied
	done := m.NewBool("done", false)
	finished := make(chan struct{}, waiters)
	for w := 1; w <= waiters; w++ {
		go func(k int64) {
			m.Enter()
			if err := m.Await(pred+" || done", autosynch.Bind("k", k)); err != nil {
				panic(err)
			}
			m.Exit()
			finished <- struct{}{}
		}(int64(w))
	}
	// Let every waiter park before measuring the relay cost.
	testutil.WaitFor(b, 10*time.Second, 0, func() bool { return m.Waiting() == waiters },
		"%d unsatisfiable waiters parked", waiters)
	for i := 0; i < driverOps; i++ {
		m.Do(func() {})
	}
	m.Do(func() { done.Set(true) })
	for w := 0; w < waiters; w++ {
		<-finished
	}
}

// benchParamBBLimit runs the parameterized buffer with a custom inactive
// list limit and returns the result for counter reporting.
func benchParamBBLimit(limit int) problems.Result {
	m := autosynch.New(autosynch.WithInactiveLimit(limit))
	count := m.NewInt("count", 0)
	m.NewInt("cap", problems.ParamBufferCap)
	stop := m.NewBool("stop", false)

	const consumers = 8
	const takesEach = 200
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		seed := uint64(11)
		for {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			k := int64(seed%problems.MaxBatch) + 1
			m.Enter()
			if err := m.Await("count + k <= cap || stop", autosynch.Bind("k", k)); err != nil {
				panic(err)
			}
			if stop.Get() {
				m.Exit()
				return
			}
			count.Add(k)
			m.Exit()
		}
	}()
	done := make(chan struct{}, consumers)
	for c := 0; c < consumers; c++ {
		go func(seed uint64) {
			for i := 0; i < takesEach; i++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				num := int64(seed%problems.MaxBatch) + 1
				m.Enter()
				if err := m.Await("count >= num", autosynch.Bind("num", num)); err != nil {
					panic(err)
				}
				count.Add(-num)
				m.Exit()
			}
			done <- struct{}{}
		}(uint64(c)*7 + 3)
	}
	for c := 0; c < consumers; c++ {
		<-done
	}
	m.Do(func() { stop.Set(true) })
	<-prodDone
	return problems.Result{Stats: m.Stats(), Ops: consumers * takesEach}
}

// TestBenchHelpers keeps the helpers honest under plain `go test`.
func TestBenchHelpers(t *testing.T) {
	r := benchParamBBLimit(128)
	if r.Stats.Registrations == 0 {
		t.Error("no registrations recorded")
	}
	if r.Stats.Broadcasts != 0 {
		t.Error("AutoSynch broadcast in bench helper")
	}
}
