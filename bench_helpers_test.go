package autosynch_test

import (
	"testing"
	"time"

	autosynch "repro"
	"repro/internal/problems"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// benchTagShape parks waiters whose predicates share one shape and whose
// keys are unsatisfiable, then drives empty monitor operations. Every exit
// runs the relay search over the parked predicates, so the measured cost
// is exactly what predicate tagging prunes: an equivalence probe misses in
// O(1), a threshold heap stops at a false root, and untaggable predicates
// are evaluated exhaustively. A done flag releases the waiters afterwards.
func benchTagShape(b *testing.B, pred string) {
	b.Helper()
	const waiters = 32
	const driverOps = 2000
	m := autosynch.New()
	m.NewInt("x", 0) // stays 0: no key in 1..waiters is ever satisfied
	done := m.NewBool("done", false)
	shaped := m.MustCompile(pred + " || done")
	finished := make(chan struct{}, waiters)
	for w := 1; w <= waiters; w++ {
		go func(k int64) {
			m.Enter()
			if err := m.AwaitPred(shaped, autosynch.Bind("k", k)); err != nil {
				panic(err)
			}
			m.Exit()
			finished <- struct{}{}
		}(int64(w))
	}
	// Let every waiter park before measuring the relay cost.
	testutil.WaitFor(b, 10*time.Second, 0, func() bool { return m.Waiting() == waiters },
		"%d unsatisfiable waiters parked", waiters)
	for i := 0; i < driverOps; i++ {
		m.Do(func() {})
	}
	m.Do(func() { done.Set(true) })
	for w := 0; w < waiters; w++ {
		<-finished
	}
}

// benchAwaitMode drives the no-park await path through one of the API
// forms — the string predicate (cache lookup per wait), the compiled
// *Predicate (no lookup), the typed builder lowered to the same compiled
// predicate, or the compiled predicate served by its minisynchc-generated
// evaluator. The problems package (linked by this test binary) registers
// generated code for this very predicate at init, so the interpreter
// modes opt out with WithoutGenerated and only the "generated" mode keeps
// the default dispatch. The shared monitor state keeps the predicate true
// throughout, so every iteration takes the fast path and the measured
// ns/op is pure per-wait API overhead.
func benchAwaitMode(b *testing.B, mode string, profile bool) {
	b.Helper()
	var opts []autosynch.Option
	if profile {
		opts = append(opts, autosynch.WithProfiling())
	}
	if mode != "generated" {
		opts = append(opts, autosynch.WithoutGenerated())
	}
	m := autosynch.New(opts...)
	count := m.NewInt("count", 1)
	capacity := m.NewInt("cap", 1<<40)
	stop := m.NewBool("stop", false)
	const pred = "count + k <= cap || stop"
	var compiled *autosynch.Predicate
	switch mode {
	case "compiled", "generated":
		compiled = m.MustCompile(pred)
	case "builder":
		compiled = m.MustCompileExpr(autosynch.Or(
			count.Expr().Plus(autosynch.Local("k")).AtMost(capacity.Expr()),
			stop.IsTrue()))
	}
	if mode == "generated" && m.Stats().GenPreds == 0 {
		b.Fatal("generated mode bound no generated evaluator (registration missing?)")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Enter()
		var err error
		if compiled != nil {
			err = m.AwaitPred(compiled, autosynch.Bind("k", int64(i&1023)))
		} else {
			err = m.Await(pred, autosynch.Bind("k", int64(i&1023)))
		}
		if err != nil {
			b.Fatal(err)
		}
		m.Exit()
	}
	b.StopTimer()
	if s := m.Stats(); s.FastPath != s.Awaits {
		b.Fatalf("benchmark parked: %d awaits, %d fast-path", s.Awaits, s.FastPath)
	}
}

// benchParamBBLimit runs the parameterized buffer with a custom inactive
// list limit and returns the result for counter reporting.
func benchParamBBLimit(limit int) problems.Result {
	m := autosynch.New(autosynch.WithInactiveLimit(limit))
	count := m.NewInt("count", 0)
	m.NewInt("cap", problems.ParamBufferCap)
	stop := m.NewBool("stop", false)
	hasRoom := m.MustCompile("count + k <= cap || stop")
	hasItems := m.MustCompile("count >= num")

	const consumers = 8
	const takesEach = 200
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		seed := uint64(11)
		for {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			k := int64(seed%problems.MaxBatch) + 1
			m.Enter()
			if err := m.AwaitPred(hasRoom, autosynch.Bind("k", k)); err != nil {
				panic(err)
			}
			if stop.Get() {
				m.Exit()
				return
			}
			count.Add(k)
			m.Exit()
		}
	}()
	done := make(chan struct{}, consumers)
	for c := 0; c < consumers; c++ {
		go func(seed uint64) {
			for i := 0; i < takesEach; i++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				num := int64(seed%problems.MaxBatch) + 1
				m.Enter()
				if err := m.AwaitPred(hasItems, autosynch.Bind("num", num)); err != nil {
					panic(err)
				}
				count.Add(-num)
				m.Exit()
			}
			done <- struct{}{}
		}(uint64(c)*7 + 3)
	}
	for c := 0; c < consumers; c++ {
		<-done
	}
	m.Do(func() { stop.Set(true) })
	<-prodDone
	return problems.Result{Stats: m.Stats(), Ops: consumers * takesEach}
}

// benchWakeToClaim arms `waiters` equivalence-keyed handles on one
// monitor, all subscribed to a single delivery channel, and drives `ops`
// publishes through them; each delivery is timed from channel dequeue to
// a successful Claim — the same wake-to-claim interval the watchd daemon
// histograms — and recorded into the returned histogram. One publish
// satisfies exactly one handle (distinct k per handle), so the claim
// never races and every op contributes one observation.
func benchWakeToClaim(waiters, ops int) stats.Histogram {
	m := autosynch.New()
	x := m.NewInt("x", 0)
	hit := m.MustCompile("x == k")
	handles := make([]*autosynch.Wait, waiters)
	ch := make(chan int, waiters)
	for k := range handles {
		handles[k] = hit.Arm(autosynch.Bind("k", int64(k+1)))
		handles[k].Subscribe(ch, k)
	}
	var hist stats.Histogram
	for i := 0; i < ops; i++ {
		k := int64(i%waiters) + 1
		m.Do(func() { x.Set(k) })
		idx := <-ch
		t0 := time.Now()
		if err := handles[idx].Claim(); err != nil {
			panic(err)
		}
		hist.Observe(time.Since(t0))
		x.Set(0)
		m.Exit()
		handles[idx] = hit.Arm(autosynch.Bind("k", int64(idx+1)))
		handles[idx].Subscribe(ch, idx)
	}
	for _, h := range handles {
		h.Cancel()
	}
	return hist
}

// TestBenchHelpers keeps the helpers honest under plain `go test`.
func TestBenchHelpers(t *testing.T) {
	r := benchParamBBLimit(128)
	if r.Stats.Registrations == 0 {
		t.Error("no registrations recorded")
	}
	if r.Stats.Broadcasts != 0 {
		t.Error("AutoSynch broadcast in bench helper")
	}
	const ops = 200
	h := benchWakeToClaim(16, ops)
	if h.Count() != ops {
		t.Errorf("wake-to-claim recorded %d observations, want %d", h.Count(), ops)
	}
	if h.P50() <= 0 || h.P99() < h.P50() || h.P999() < h.P99() {
		t.Errorf("wake-to-claim percentiles not monotone: %s", h.String())
	}
}
