// Package autosynch is a Go implementation of AutoSynch, the
// automatic-signal monitor of Hung & Garg, "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (PLDI 2013).
//
// A Monitor provides mutual exclusion plus conditional synchronization
// without condition variables: instead of declaring conditions and calling
// signal/signalAll, a thread states the predicate it is waiting for —
//
//	m := autosynch.New()
//	count := m.NewInt("count", 0)
//	capacity := m.NewInt("cap", 64)
//	_ = capacity
//
//	// producer
//	m.Enter()
//	m.Await("count < cap")
//	count.Add(1)
//	m.Exit()
//
//	// consumer taking num items (a complex predicate with a local)
//	m.Enter()
//	m.Await("count >= num", autosynch.Bind("num", num))
//	count.Add(-num)
//	m.Exit()
//
// and the runtime signals the right thread at the right time. Three
// mechanisms from the paper make this efficient:
//
//   - Globalization (§4.1): local variables are bound at the moment Await
//     starts, turning a complex predicate into a shared one that any thread
//     can evaluate on the waiter's behalf — a thread is only woken when its
//     predicate is actually true.
//   - Relay invariance (§4.2): whenever a thread exits the monitor or goes
//     to sleep, it signals one waiter whose predicate has become true, so
//     signalAll is never needed.
//   - Predicate tagging (§4.3): waiting predicates are indexed by
//     equivalence tags (hash tables) and threshold tags (min/max heaps) on
//     canonical shared expressions, so the waiter to relay to is found
//     without scanning every predicate.
//
// The package also exports the paper's comparison mechanisms — Baseline
// (one condition variable + signalAll) and Explicit (instrumented manual
// condition variables) — and the AutoSynch-T variant (WithoutTagging), so
// the evaluation experiments can be reproduced; see EXPERIMENTS.md.
package autosynch

import (
	"repro/internal/core"
)

// Monitor is an automatic-signal monitor; see the package documentation.
type Monitor = core.Monitor

// Baseline is the single-condition signalAll automatic monitor used as the
// reference point in the paper's evaluation (§6.2).
type Baseline = core.Baseline

// Explicit is the instrumented explicit-signal monitor (mutex + manually
// signaled condition variables).
type Explicit = core.Explicit

// Cond is an explicit condition variable created by Explicit.NewCond.
type Cond = core.Cond

// IntCell is a shared integer monitor variable.
type IntCell = core.IntCell

// BoolCell is a shared boolean monitor variable.
type BoolCell = core.BoolCell

// Binding supplies one thread-local variable value to Await.
type Binding = core.Binding

// Stats is the instrumentation snapshot shared by all mechanisms.
type Stats = core.Stats

// Option configures New, NewBaseline, or NewExplicit.
type Option = core.Option

// ErrNeverTrue is returned by Await when the globalized predicate is
// constant false (waiting would deadlock).
var ErrNeverTrue = core.ErrNeverTrue

// New constructs an automatic-signal monitor (the full AutoSynch
// mechanism; use WithoutTagging for the AutoSynch-T variant).
func New(opts ...Option) *Monitor { return core.New(opts...) }

// NewBaseline constructs the signalAll reference monitor.
func NewBaseline(opts ...Option) *Baseline { return core.NewBaseline(opts...) }

// NewExplicit constructs an explicit-signal monitor.
func NewExplicit(opts ...Option) *Explicit { return core.NewExplicit(opts...) }

// Bind binds a local integer variable for the duration of an Await.
func Bind(name string, v int64) Binding { return core.BindInt(name, v) }

// BindBool binds a local boolean variable for the duration of an Await.
func BindBool(name string, v bool) Binding { return core.BindBool(name, v) }

// WithoutTagging disables predicate tagging (the AutoSynch-T mechanism).
func WithoutTagging() Option { return core.WithoutTagging() }

// WithProfiling enables the Table 1 phase timers (await / lock /
// relaySignal / tag manager).
func WithProfiling() Option { return core.WithProfiling() }

// WithInactiveLimit bounds the inactive predicate cache (§5.2).
func WithInactiveLimit(n int) Option { return core.WithInactiveLimit(n) }

// WithDNFLimit bounds the DNF blow-up allowed per predicate.
func WithDNFLimit(n int) Option { return core.WithDNFLimit(n) }
