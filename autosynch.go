// Package autosynch is a Go implementation of AutoSynch, the
// automatic-signal monitor of Hung & Garg, "AutoSynch: An Automatic-Signal
// Monitor Based on Predicate Tagging" (PLDI 2013).
//
// A Monitor provides mutual exclusion plus conditional synchronization
// without condition variables: instead of declaring conditions and calling
// signal/signalAll, a thread states the predicate it is waiting for and
// the runtime signals the right thread at the right time.
//
// # Compiled predicates
//
// Predicates are compiled once, ahead of the wait path, and waited on any
// number of times. Compile turns a predicate string into a *Predicate —
// parsing, type inference, DNF canonicalization, and tag-template
// derivation all happen at compile time — and each wait then only
// validates and snapshots the thread-local bindings:
//
//	m := autosynch.New()
//	count := m.NewInt("count", 0)
//	capacity := m.NewInt("cap", 64)
//	_ = capacity
//
//	hasRoom := m.MustCompile("count < cap")
//	hasItems := m.MustCompile("count >= num")
//
//	// producer
//	m.Enter()
//	hasRoom.Await()
//	count.Add(1)
//	m.Exit()
//
//	// consumer taking num items (a complex predicate with a local)
//	m.Enter()
//	hasItems.Await(autosynch.Bind("num", num))
//	count.Add(-num)
//	m.Exit()
//
// The typed builder constructs the same compiled predicates without
// strings — count.AtLeast(Local("num")) is "count >= num" — and lowers to
// the identical IR, sharing the predicate cache:
//
//	hasItems := m.MustCompileExpr(count.AtLeast(autosynch.Local("num")))
//	hasRoom := m.MustCompileExpr(
//		autosynch.Or(count.Expr().Plus(autosynch.Local("k")).AtMost(capacity.Expr()),
//			stop.IsTrue()))
//
// The string form Monitor.Await("count >= num", Bind("num", n)) remains as
// convenience sugar: it consults the same predicate cache (compiling on
// first use), so it costs one cache lookup per wait where AwaitPred costs
// none.
//
// # Generated predicate evaluators (minisynchc)
//
// Compiled predicates normally evaluate through a closure tree built by
// the expression compiler. The minisynchc compiler removes that last
// layer of interpretation: it emits, per predicate, a monomorphic Go
// evaluator that reads the monitor's cells directly (plus key functions
// matching the predicate's tag template) and registers both in a
// process-global registry via RegisterGenerated. Add a go:generate
// directive next to a predicate manifest listing each monitor's shared
// variables and predicate sources:
//
//	//go:generate go run repro/cmd/minisynchc -manifest -pkg mypkg -o zz_generated_preds.go preds.manifest
//
// (or run minisynchc -emit preds over a MiniSynch source file). Linking
// the generated file is all it takes: Compile and CompileExpr consult the
// registry, and any predicate whose canonical source, shared-variable
// types, and local-variable types match a registration is transparently
// served by the generated evaluator — same DNF analysis, same tag
// template, same entry identities, so signaling behavior is unchanged and
// only evaluation gets cheaper. Anything without a matching registration
// (or on a monitor constructed with WithoutGenerated) falls back to the
// closure path. Stats reports which path served: GenPreds counts
// predicates bound to generated code, GenMisses counts fallbacks, and
// GenEntries counts waiting-condition entries whose evaluation ran
// generated. The differential tests in internal/codegen and
// internal/problems pin generated ≡ interpreted (result and tags) over
// the whole scenario registry plus a fuzzed predicate corpus, and the CI
// drift gate regenerates every zz_generated file and fails on diff.
//
// # Select-composable wait handles
//
// Every blocking wait parks its goroutine, so a server multiplexing many
// resources would pay one goroutine per armed predicate. The handle API
// removes that cost: Predicate.Arm (and the per-mechanism ArmFunc)
// registers the waiter without blocking and returns a first-class *Wait
// whose Ready channel is closed when relay signaling finds the predicate
// true. One goroutine can therefore drive any number of armed waits with
// select:
//
//	wa, wb := notEmptyA.Arm(), notEmptyB.Arm()
//	for {
//		select {
//		case <-wa.Ready():
//			if err := wa.Claim(); err == nil { // monitor held, predicate true
//				takeA()
//				ma.Exit()
//				wa = notEmptyA.Arm()
//			} // ErrNotReady: falsified by a race; wa was re-armed
//		case <-wb.Ready():
//			...
//		}
//	}
//
// Claim re-enters the monitor and re-validates the predicate Mesa-style;
// if a racing mutation falsified it the handle is transparently re-armed
// (fresh Ready channel) and Claim returns ErrNotReady. Cancel abandons
// the registration with the same relay-invariance repair as a context
// cancellation. TryAwait/TryPred/TryFunc are the non-blocking degenerate
// case — one in-monitor evaluation, no parking, no arming — and the
// blocking waits themselves are thin wrappers that register the same
// waiter object and park on its channel. Arms, Claims, and FutileClaims
// are accounted in Stats uniformly across all three mechanisms.
//
// # Guarded regions and selective waiting
//
// The unit of the paper's API is the conditional critical region — enter,
// waituntil(P), mutate, exit — and When reifies it as a first-class
// value. A Guard packages the predicate (with its bindings snapshotted)
// and the monitor; Do runs the whole region atomically with a panic-safe
// unlock, DoCtx adds cancellation, Try is the non-blocking form:
//
//	hasItems := m.MustCompile("count >= num")
//	take := m.When(hasItems, autosynch.Bind("num", 3))
//	if err := take.Do(func() { count.Add(-3) }); err != nil { ... }
//
// Guards are reusable, valid on every mechanism (WhenFunc on a closure
// predicate for Baseline and Explicit, Cond.When for one explicit
// condition, keyed When/WhenFunc on a Sharded monitor), and — the point —
// they compose. Select waits on any number of guards spanning arbitrary
// monitors and mechanisms, parks the goroutine once, claims the first
// predicate to become true (re-validating Mesa-style and transparently
// re-arming if a racing mutation falsified it), cancels the losers with
// no leaked waiters, and runs the winning case's body under that guard's
// monitor:
//
//	idx, err := autosynch.Select(
//		notEmptyA.When().Then(func() { drainA() }),
//		notEmptyB.When().Then(func() { drainB() }),
//	)
//
// The initial poll starts at a random case for fairness; SelectOrdered
// makes the case order a priority order instead, and a Default case makes
// the whole Select non-blocking, exactly like a select statement's
// default. Guard construction errors (bad bindings, ErrNeverTrue) are
// surfaced from Guard.Err and from Select before anything parks. See the
// `dispatcher` and `selective-server` scenarios and BenchmarkSelect.
//
// # Cancellation
//
// Every wait has a context-aware variant: Monitor.AwaitCtx/AwaitPredCtx/
// AwaitFuncCtx, Predicate.AwaitCtx, Baseline.AwaitCtx, and Cond.AwaitCtx
// return ctx.Err() when the context is done before the predicate becomes
// true. A cancelled waiter returns holding the monitor — the usual
// Enter/defer-Exit pairing stays valid — and is fully unregistered from
// the predicate table and tag structures. Relay invariance survives the
// abandonment: a signal that was in flight to the abandoned waiter is
// reconciled and relayed onward, so the next waiter whose predicate holds
// is signaled and no wake-up is lost. Cancellation takes priority once
// observed; a waiter may still return nil if its predicate became true
// before the cancellation was delivered.
//
// # Deadlines
//
// Every wait also has a deadline-shaped variant, the timer peer of the
// context forms: Monitor.AwaitDeadline/AwaitTimeout (and the
// AwaitPredDeadline / AwaitFuncDeadline / AwaitFuncTimeout spellings on
// every mechanism), Predicate.AwaitDeadline, Cond.AwaitDeadline, and
// Wait.Deadline/Timeout on an armed handle. If the predicate has not
// become true by the deadline the wait returns ErrDeadline — holding the
// monitor, fully unregistered, with the same relay-invariance repair as
// cancellation; an expiry observed on wake-up likewise takes priority
// even if the predicate just became true. Use a deadline when the give-up
// time is known in advance ("acquire a connection within 50ms"): it costs
// no context allocation and no watcher goroutine, because all of a
// monitor's deadlines ride one timer wheel whose single service goroutine
// starts on demand and exits when no deadline is pending. Use AwaitCtx
// when cancellation is driven by an external event or an inherited
// request context.
//
// # Wake policies and starvation accounting
//
// When several waiters are eligible at once, the runtime normally wakes
// the first one the tag-pruned relay search happens to visit — cheapest,
// but unspecified. WithPolicy makes the choice explicit: FIFO wakes the
// longest-registered eligible waiter (bounded bypass, predictable tail
// latency), LIFO the newest (deepest cache affinity, unbounded bypass),
// and Priority(rank) the highest-ranked, computing each waiter's rank
// from its binding snapshot at registration time (sound because locals
// cannot change while a thread waits — Proposition 1). A policy-governed
// relay scan compares every eligible waiter instead of stopping at the
// first, so it costs the exhaustive search of AutoSynch-T; leave the
// policy nil where throughput matters more than wake order.
// Predicate.UsePolicy overrides the pick among that predicate's own
// waiters. Fairness becomes measurable alongside: Stats.MaxWaitNs tracks
// the longest completed wait, WithStarvationThreshold makes Stats.Starved
// count completions that waited longer than the threshold, and
// Stats.PolicyWakes counts signals whose target a policy chose — under a
// priority storm, FIFO shows bounded MaxWaitNs while Priority shows
// nonzero Starved, which is exactly the trade the policy names.
//
// # Mechanisms
//
// Three mechanisms from the paper make automatic signaling efficient:
//
//   - Globalization (§4.1): local variables are bound at the moment Await
//     starts, turning a complex predicate into a shared one that any thread
//     can evaluate on the waiter's behalf — a thread is only woken when its
//     predicate is actually true.
//   - Relay invariance (§4.2): whenever a thread exits the monitor or goes
//     to sleep, it signals one waiter whose predicate has become true, so
//     signalAll is never needed.
//   - Predicate tagging (§4.3): waiting predicates are indexed by
//     equivalence tags (hash tables) and threshold tags (min/max heaps) on
//     canonical shared expressions, so the waiter to relay to is found
//     without scanning every predicate.
//
// # Sharding
//
// One Monitor is one lock and one condition manager, and the relay
// search on every exit considers every waiting condition registered with
// it — tagging prunes within a condition's group, not across groups.
// When state and waiters partition by key, a Sharded monitor (NewSharded)
// splits them across S inner Monitors: keyed operations on different
// shards run concurrently, all the guarantees above hold per shard, and
// genuinely cross-shard conditions ("total free across all shards ≥ n")
// are expressed with an AggregateCounter, whose per-shard deltas batch
// under the shard lock and publish to a summary monitor where the bound
// is an ordinary threshold-tagged predicate. See internal/shard and the
// sharding section of EXPERIMENTS.md (scale-shards) for the protocol and
// the measured scaling.
//
// The package also exports the paper's comparison mechanisms — Baseline
// (one condition variable + signalAll) and Explicit (instrumented manual
// condition variables) — and the AutoSynch-T variant (WithoutTagging), so
// the evaluation experiments can be reproduced; see EXPERIMENTS.md. All
// three monitor types implement the Mechanism interface, letting harnesses
// and benchmarks drive any of them through one surface.
package autosynch

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
)

// Monitor is an automatic-signal monitor; see the package documentation.
type Monitor = core.Monitor

// Predicate is a compiled waiting condition produced by Monitor.Compile or
// Monitor.CompileExpr: analysis is paid once, waits only bind and enqueue.
type Predicate = core.Predicate

// PredicateError is the uniform error type for malformed predicates and
// binding mismatches, from both compile time and wait time; use errors.As
// to inspect it and errors.Is(err, ErrNeverTrue) for unsatisfiable waits.
type PredicateError = core.PredicateError

// Mechanism is the driving surface shared by Monitor, Baseline, and
// Explicit: Enter/Exit/Do, closure waits with and without a context, and
// the Stats/Waiting instrumentation.
type Mechanism = core.Mechanism

// Baseline is the single-condition signalAll automatic monitor used as the
// reference point in the paper's evaluation (§6.2).
type Baseline = core.Baseline

// Explicit is the instrumented explicit-signal monitor (mutex + manually
// signaled condition variables).
type Explicit = core.Explicit

// Cond is an explicit condition variable created by Explicit.NewCond.
type Cond = core.Cond

// IntCell is a shared integer monitor variable. Its comparison methods
// (AtLeast, LessThan, …) build typed predicates over it.
type IntCell = core.IntCell

// BoolCell is a shared boolean monitor variable.
type BoolCell = core.BoolCell

// IntExpr is an integer-valued subexpression of a typed predicate.
type IntExpr = core.IntExpr

// BoolExpr is a boolean-valued typed predicate expression, compiled with
// Monitor.CompileExpr.
type BoolExpr = core.BoolExpr

// Wait is a first-class armed waiter: Ready delivers the notification on
// a channel, Claim re-enters the monitor and re-validates the predicate,
// Cancel abandons the registration. Produced by Predicate.Arm, Cond.Arm,
// and the ArmFunc of every mechanism.
type Wait = core.Wait

// Guard is a guarded region — the conditional critical region as a
// first-class value: Do/DoCtx/Try atomically enter, await the predicate,
// run the body, and exit with a panic-safe unlock. Produced by
// Monitor.When, Predicate.When, Cond.When, the WhenFunc of every
// mechanism, and the keyed When/WhenFunc of a Sharded monitor; guards
// compose across monitors and mechanisms with Select.
type Guard = core.Guard

// Case pairs a guard with the body to run if it wins a Select; build
// cases with Guard.Then and Default.
type Case = core.Case

// Binding supplies one thread-local variable value to a wait.
type Binding = core.Binding

// Stats is the instrumentation snapshot shared by all mechanisms.
type Stats = core.Stats

// Option configures New, NewBaseline, or NewExplicit.
type Option = core.Option

// GeneratedPred is a generated predicate evaluator registered by
// minisynchc-emitted files; see RegisterGenerated.
type GeneratedPred = core.GeneratedPred

// GenVar names one typed variable of a generated predicate.
type GenVar = core.GenVar

// GenCells is the resolved shared-cell view passed to generated
// evaluators.
type GenCells = core.GenCells

// GenEval is a generated whole-predicate evaluator.
type GenEval = core.GenEval

// GenKeyFn is a generated tag-key computation over the local bindings.
type GenKeyFn = core.GenKeyFn

// ErrNeverTrue is the sentinel reported (inside a *PredicateError) when
// the globalized predicate is constant false (waiting would deadlock).
var ErrNeverTrue = core.ErrNeverTrue

// ErrNotReady is returned by Wait.Claim when a racing mutation falsified
// the predicate; the handle has been re-armed with a fresh Ready channel.
var ErrNotReady = core.ErrNotReady

// ErrClaimed is returned by Wait.Claim on an already-claimed handle.
var ErrClaimed = core.ErrClaimed

// ErrCancelled is reported by Wait.Err and Wait.Claim after Wait.Cancel.
var ErrCancelled = core.ErrCancelled

// ErrDeadline is returned by the deadline-aware waits (AwaitDeadline,
// AwaitTimeout, AwaitFuncDeadline, …) and reported by an armed handle
// whose Wait.Deadline passed before it was claimed.
var ErrDeadline = core.ErrDeadline

// ErrNoCases is returned by Select when no guard case was supplied.
var ErrNoCases = core.ErrNoCases

// ErrNilGuard reports a Select case whose guard is nil.
var ErrNilGuard = core.ErrNilGuard

// ErrManyDefaults reports a Select with more than one Default case.
var ErrManyDefaults = core.ErrManyDefaults

// Select waits until the first of the cases' guard predicates becomes
// true and runs that case's body inside its guard's monitor, returning
// the winning index. The guards may span arbitrary monitors and
// mechanisms; the goroutine parks once (no goroutine per guard), claims
// Mesa-style with transparent re-arming, and cancels the losers with no
// leaked waiters. See the package documentation and core.Select.
func Select(cases ...Case) (int, error) { return core.Select(cases...) }

// SelectCtx is Select with cancellation: when ctx is done first, every
// armed guard is cancelled and SelectCtx returns ctx.Err() with index -1.
func SelectCtx(ctx context.Context, cases ...Case) (int, error) {
	return core.SelectCtx(ctx, cases...)
}

// SelectOrdered is Select with the case order as a priority order among
// simultaneously ready guards (the initial poll and arming prefer
// earlier cases); once parked, the first predicate to become true wins.
func SelectOrdered(cases ...Case) (int, error) { return core.SelectOrdered(cases...) }

// Default makes a Select non-blocking: if no guard is immediately true,
// the default body runs outside any monitor and Select returns its index.
func Default(body func()) Case { return core.Default(body) }

// New constructs an automatic-signal monitor (the full AutoSynch
// mechanism; use WithoutTagging for the AutoSynch-T variant).
func New(opts ...Option) *Monitor { return core.New(opts...) }

// NewBaseline constructs the signalAll reference monitor.
func NewBaseline(opts ...Option) *Baseline { return core.NewBaseline(opts...) }

// NewExplicit constructs an explicit-signal monitor.
func NewExplicit(opts ...Option) *Explicit { return core.NewExplicit(opts...) }

// Bind binds a local integer variable for the duration of a wait.
func Bind(name string, v int64) Binding { return core.BindInt(name, v) }

// BindBool binds a local boolean variable for the duration of a wait.
func BindBool(name string, v bool) Binding { return core.BindBool(name, v) }

// Lit is an integer literal in a typed predicate.
func Lit(v int64) IntExpr { return core.Lit(v) }

// Local references a thread-local integer variable in a typed predicate;
// supply its value with Bind on every wait.
func Local(name string) IntExpr { return core.Local(name) }

// LocalBool references a thread-local boolean variable in a typed
// predicate; supply its value with BindBool on every wait.
func LocalBool(name string) BoolExpr { return core.LocalBool(name) }

// And, Or, and Not combine typed predicates.
func And(ps ...BoolExpr) BoolExpr { return core.And(ps...) }

// Or is the disjunction of typed predicates.
func Or(ps ...BoolExpr) BoolExpr { return core.Or(ps...) }

// Not negates a typed predicate.
func Not(p BoolExpr) BoolExpr { return core.Not(p) }

// RegisterGenerated installs a generated predicate evaluator in the
// process-global registry; monitors compiled afterwards dispatch to it
// whenever source and variable types match. Called from init() of
// zz_generated_preds.go files emitted by `//go:generate minisynchc`.
func RegisterGenerated(g GeneratedPred) { core.RegisterGenerated(g) }

// GeneratedCount reports how many generated predicates are registered.
func GeneratedCount() int { return core.GeneratedCount() }

// GenDiv is the generated-code division helper: division by zero
// evaluates to 0 ("not yet true"), matching compiled predicates.
func GenDiv(a, b int64) int64 { return core.GenDiv(a, b) }

// GenMod is the generated-code modulus helper; see GenDiv.
func GenMod(a, b int64) int64 { return core.GenMod(a, b) }

// WithoutTagging disables predicate tagging (the AutoSynch-T mechanism).
func WithoutTagging() Option { return core.WithoutTagging() }

// WithoutGenerated disables generated-evaluator dispatch for one monitor;
// the closure-compiled path serves even when a registration matches.
func WithoutGenerated() Option { return core.WithoutGenerated() }

// WithProfiling enables the Table 1 phase timers (await / lock /
// relaySignal / tag manager).
func WithProfiling() Option { return core.WithProfiling() }

// WithInactiveLimit bounds the inactive predicate cache (§5.2).
func WithInactiveLimit(n int) Option { return core.WithInactiveLimit(n) }

// WithDNFLimit bounds the DNF blow-up allowed per predicate.
func WithDNFLimit(n int) Option { return core.WithDNFLimit(n) }

// Policy is a pluggable wake policy: when several waiters are eligible,
// it decides which one a signal picks. See the package documentation
// ("Wake policies and starvation accounting") for the trade-offs.
type Policy = policy.Policy

// FIFO wakes the longest-registered eligible waiter (bounded bypass).
var FIFO = policy.FIFO

// LIFO wakes the most recently registered eligible waiter.
var LIFO = policy.LIFO

// Priority builds a policy that wakes the highest-ranked eligible
// waiter, computing each waiter's rank from its binding snapshot (by
// local-variable name) at registration time; ties break FIFO.
func Priority(rank func(binds map[string]int64) int64) Policy { return policy.Priority(rank) }

// WithPolicy selects the monitor's wake policy; nil (the default) keeps
// the unspecified first-found pick of the plain relay search.
func WithPolicy(p Policy) Option { return core.WithPolicy(p) }

// WithStarvationThreshold makes Stats.Starved count completed waits that
// waited longer than d; zero disables the counter (Stats.MaxWaitNs is
// tracked regardless).
func WithStarvationThreshold(d time.Duration) Option { return core.WithStarvationThreshold(d) }
