// Benchmarks reproducing every table and figure of the paper's evaluation
// (§6). Each BenchmarkFigNN runs the corresponding workload once per
// b.N at a representative thread count and reports the custom metrics the
// paper plots (runtime is b's own metric; wake-ups, futile wake-ups, and
// signals are reported as per-op metrics). The full multi-point sweeps —
// the actual figure series — are produced by cmd/autosynch-bench; these
// benches make every experiment reachable through `go test -bench`.
//
// Sub-benchmarks are named by mechanism so benchstat can compare them:
//
//	go test -bench 'Fig14' -benchmem
package autosynch_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	autosynch "repro"
	"repro/internal/harness"
	"repro/internal/problems"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// benchOps is the per-iteration operation budget. Small enough that -bench
// finishes quickly, large enough that signaling dominates setup.
const benchOps = 5000

// benchProblem runs one problem/mechanism pair under b.N and reports the
// paper's counters as per-op metrics.
func benchProblem(b *testing.B, runner problems.Runner, mech problems.Mechanism, threads int) {
	b.Helper()
	var wakeups, futile, signals, broadcasts float64
	var ops int64
	for i := 0; i < b.N; i++ {
		r := runner(mech, threads, benchOps)
		if r.Check != 0 {
			b.Fatalf("conservation check failed: %d", r.Check)
		}
		wakeups += float64(r.Stats.Wakeups)
		futile += float64(r.Stats.FutileWakeups)
		signals += float64(r.Stats.Signals)
		broadcasts += float64(r.Stats.Broadcasts)
		ops += r.Ops
	}
	perOp := float64(ops)
	if perOp == 0 {
		perOp = 1
	}
	b.ReportMetric(wakeups/perOp, "wakeups/op")
	b.ReportMetric(futile/perOp, "futile/op")
	b.ReportMetric(signals/perOp, "signals/op")
	b.ReportMetric(broadcasts/perOp, "broadcasts/op")
}

func benchMechs(b *testing.B, runner problems.Runner, mechs []problems.Mechanism, threads int) {
	b.Helper()
	for _, mech := range mechs {
		mech := mech
		b.Run(fmt.Sprintf("%s/threads=%d", mech, threads), func(b *testing.B) {
			benchProblem(b, runner, mech, threads)
		})
	}
}

// BenchmarkProblems iterates the scenario registry: one sub-benchmark
// per registered scenario and mechanism at the scenario's representative
// thread count, so every workload — the paper's seven and every later
// addition — is reachable through `go test -bench` without a
// hand-maintained list:
//
//	go test -bench 'Problems/river-crossing' -benchmem
func BenchmarkProblems(b *testing.B) {
	for _, spec := range problems.Specs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			benchMechs(b, spec.Runner, spec.Mechanisms(), spec.DefaultThreads)
		})
	}
}

// BenchmarkFig11RoundRobinWide: the right end of Fig. 11's x-axis, where
// AutoSynch-T's linear scan separates from AutoSynch.
func BenchmarkFig11RoundRobinWide(b *testing.B) {
	rr := problems.MustLookup("round-robin")
	benchMechs(b, rr.Runner, rr.Mechanisms(), 128)
}

// BenchmarkFig15ContextSwitches: the parameterized buffer reported
// through the wake-up counters (Fig. 15); read the wakeups/op metric.
func BenchmarkFig15ContextSwitches(b *testing.B) {
	pb := problems.MustLookup("parameterized-buffer")
	benchMechs(b, pb.Runner, pb.Mechanisms(), 64)
}

// BenchmarkTable1CPUBreakdown: the profiled round-robin run behind
// Table 1; reports the relaySignal and tag-manager shares as metrics.
func BenchmarkTable1CPUBreakdown(b *testing.B) {
	for _, mech := range []problems.Mechanism{problems.Explicit, problems.AutoSynchT, problems.AutoSynch} {
		mech := mech
		b.Run(mech.String(), func(b *testing.B) {
			var relayNs, tagNs, awaitNs float64
			for i := 0; i < b.N; i++ {
				r := problems.RunRoundRobinProfiled(mech, 128, benchOps)
				if r.Check != 0 {
					b.Fatalf("check failed: %d", r.Check)
				}
				relayNs += float64(r.Stats.RelayNs)
				tagNs += float64(r.Stats.TagMgmtNs)
				awaitNs += float64(r.Stats.AwaitNs)
			}
			n := float64(b.N)
			b.ReportMetric(relayNs/n, "relay-ns/run")
			b.ReportMetric(tagNs/n, "tagmgr-ns/run")
			b.ReportMetric(awaitNs/n, "await-ns/run")
		})
	}
}

// BenchmarkAwaitStringVsCompiled quantifies the per-wait savings of the
// compiled-predicate API. The predicate is always satisfied, so no
// iteration parks and ns/op is exactly the await-path overhead: the
// string form re-hashes the source text against the predicate cache on
// every wait, AwaitPred skips the lookup entirely, the typed-builder
// form compiles to the same *Predicate as the string, and the generated
// form runs the same AwaitPred loop with the minisynchc-generated
// evaluator dispatched in place of the closure tree. The profiled
// variants run the same loop with the Table-1 phase timers enabled,
// confirming the reduction shows up under profiling too:
//
//	go test -bench 'AwaitStringVsCompiled' -benchtime 2s
func BenchmarkAwaitStringVsCompiled(b *testing.B) {
	for _, profile := range []bool{false, true} {
		for _, mode := range []string{"string", "compiled", "builder", "generated"} {
			name := mode
			if profile {
				name += "-profiled"
			}
			b.Run(name, func(b *testing.B) {
				benchAwaitMode(b, mode, profile)
			})
		}
	}
}

// BenchmarkMultiplexedWaiters is the scale proof of the handle redesign:
// ONE goroutine drives 1024 concurrently armed waits. The handles variant
// arms 1024 equivalence-tagged predicates (x == k) on one monitor and
// multiplexes them with reflect.Select — no goroutine is parked anywhere;
// the relay signal lands on the armed handle's channel and the claim
// re-validates under the lock. The goroutines variant serves the exact
// same traffic the pre-handle way, with 1024 goroutines each blocked in
// AwaitPred, so the ns/op gap (and -benchmem allocation gap) is the cost
// of goroutine-per-waiter multiplexing; EXPERIMENTS.md records the
// comparison.
func BenchmarkMultiplexedWaiters(b *testing.B) {
	const waiters = 1024
	b.Run(fmt.Sprintf("handles-select-%d", waiters), func(b *testing.B) {
		m := autosynch.New()
		x := m.NewInt("x", 0)
		hit := m.MustCompile("x == k")
		handles := make([]*autosynch.Wait, waiters)
		cases := make([]reflect.SelectCase, waiters)
		for k := range handles {
			handles[k] = hit.Arm(autosynch.Bind("k", int64(k+1)))
			cases[k] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(handles[k].Ready())}
		}
		if w := m.Waiting(); w != waiters {
			b.Fatalf("armed %d waits, Waiting() = %d", waiters, w)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := int64(i%waiters) + 1
			m.Do(func() { x.Set(k) })
			idx, _, _ := reflect.Select(cases)
			if err := handles[idx].Claim(); err != nil {
				b.Fatalf("claim of handle %d: %v", idx, err)
			}
			x.Set(0)
			m.Exit()
			handles[idx] = hit.Arm(autosynch.Bind("k", int64(idx+1)))
			cases[idx].Chan = reflect.ValueOf(handles[idx].Ready())
		}
		b.StopTimer()
		for _, h := range handles {
			h.Cancel()
		}
		if w := m.Waiting(); w != 0 {
			b.Fatalf("%d handles leaked after Cancel", w)
		}
	})
	// handles-direct isolates the handle machinery (arm, relay delivery,
	// claim, re-arm) from reflect.Select's O(N) case walk: the same 1024
	// armed waits, but the driver receives from the one channel it knows
	// will fire. The gap between this and handles-select is pure
	// reflect.Select cost.
	b.Run(fmt.Sprintf("handles-direct-%d", waiters), func(b *testing.B) {
		m := autosynch.New()
		x := m.NewInt("x", 0)
		hit := m.MustCompile("x == k")
		handles := make([]*autosynch.Wait, waiters)
		for k := range handles {
			handles[k] = hit.Arm(autosynch.Bind("k", int64(k+1)))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := int64(i%waiters) + 1
			m.Do(func() { x.Set(k) })
			idx := int(k - 1)
			<-handles[idx].Ready()
			if err := handles[idx].Claim(); err != nil {
				b.Fatalf("claim of handle %d: %v", idx, err)
			}
			x.Set(0)
			m.Exit()
			handles[idx] = hit.Arm(autosynch.Bind("k", int64(idx+1)))
		}
		b.StopTimer()
		for _, h := range handles {
			h.Cancel()
		}
		if w := m.Waiting(); w != 0 {
			b.Fatalf("%d handles leaked after Cancel", w)
		}
	})
	b.Run(fmt.Sprintf("goroutines-%d", waiters), func(b *testing.B) {
		m := autosynch.New()
		x := m.NewInt("x", 0)
		stop := m.NewBool("stop", false)
		hit := m.MustCompile("x == k || stop")
		ack := make(chan struct{}, 1)
		done := make(chan struct{}, waiters)
		for k := 1; k <= waiters; k++ {
			go func(k int64) {
				for {
					m.Enter()
					if err := m.AwaitPred(hit, autosynch.Bind("k", k)); err != nil {
						panic(err)
					}
					if stop.Get() {
						m.Exit()
						done <- struct{}{}
						return
					}
					x.Set(0)
					m.Exit()
					ack <- struct{}{}
				}
			}(int64(k))
		}
		testutil.WaitFor(b, 30*time.Second, 0, func() bool { return m.Waiting() == waiters },
			"%d goroutine waiters parked", waiters)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := int64(i%waiters) + 1
			m.Do(func() { x.Set(k) })
			<-ack
		}
		b.StopTimer()
		m.Do(func() { stop.Set(true) })
		for k := 0; k < waiters; k++ {
			<-done
		}
	})
}

// BenchmarkSelect prices the three ways one goroutine can wait on N
// predicates across N distinct monitors, at a fan-out of 16. Each
// iteration deposits one token on a rotating monitor and consumes it:
//
//   - select-guards: autosynch.Select over N reusable guards — the
//     guarded-region API unit. Each call arms N handles, parks once on a
//     single shared channel (no reflect walk), claims Mesa-style, and
//     cancels the losers, so its per-op cost is the honest price of
//     leak-free arming and teardown.
//   - reflect-handles: the pre-guard spelling this PR removed from the
//     dispatcher scenario — persistent armed handles multiplexed with
//     reflect.Select, re-armed one at a time. Cheaper per op (no re-arm
//     churn) but the loop is hand-assembled, leak-prone, and pays
//     reflect.Select's O(N) case walk on every park.
//   - goroutine-per-guard: the pre-handle answer — one goroutine parked
//     in Guard.Do per monitor, a channel ack per consumption; the cost
//     of goroutine-per-waiter multiplexing.
//
// The three modes share one harness, harness.RunSelectFan — the same
// code the sel-fanout experiment sweeps — so the re-arm and teardown
// protocols exist in exactly one copy; read the ns/item metric for the
// per-delivery cost (raw ns/op is one whole benchOps-sized run).
func BenchmarkSelect(b *testing.B) {
	const fan = 16
	for _, mode := range []string{"select-guards", "reflect-handles", "goroutine-per-guard"} {
		mode := mode
		b.Run(fmt.Sprintf("%s-%d", mode, fan), func(b *testing.B) {
			var elapsed time.Duration
			var ops int64
			for i := 0; i < b.N; i++ {
				r := harness.RunSelectFan(mode, fan, benchOps)
				if r.Check != 0 {
					b.Fatalf("%d waiters leaked", r.Check)
				}
				elapsed += r.Elapsed
				ops += r.Ops
			}
			if ops > 0 {
				b.ReportMetric(float64(elapsed.Nanoseconds())/float64(ops), "ns/item")
				b.ReportMetric(float64(ops)/elapsed.Seconds(), "items/s")
			}
		})
	}
}

// BenchmarkShardScaling is the scaling proof of the sharded monitor: the
// sharded-kv workload at a fixed 256 goroutines, swept over partition
// counts, with shards=1 as the single-core.Monitor reference. A single
// monitor pays the relay search across every resident per-key predicate
// group on every exit, plus all the lock traffic; 16 shards divide both
// by 16. Compare ns/op across the sub-benchmarks (benchstat), or read the
// ops/s metric directly; the scale-shards experiment is the multi-trial
// sweep with the same series:
//
//	go test -bench 'ShardScaling' -benchtime 3x
func BenchmarkShardScaling(b *testing.B) {
	const threads = 256
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		b.Run(fmt.Sprintf("autosynch/shards=%d/threads=%d", shards, threads), func(b *testing.B) {
			var ops int64
			var wakeups, futile float64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				r := problems.RunShardedKVShards(problems.AutoSynch, threads, benchOps, shards)
				if r.Check != 0 {
					b.Fatalf("conservation check failed: %d", r.Check)
				}
				ops += r.Ops
				elapsed += r.Elapsed
				wakeups += float64(r.Stats.Wakeups)
				futile += float64(r.Stats.FutileWakeups)
			}
			if elapsed > 0 {
				b.ReportMetric(float64(ops)/elapsed.Seconds(), "ops/s")
			}
			if ops > 0 {
				b.ReportMetric(wakeups/float64(ops), "wakeups/op")
				b.ReportMetric(futile/float64(ops), "futile/op")
			}
		})
	}
}

// BenchmarkWakeToClaim prices the delivery interval the watchd daemon
// histograms: from the moment a relay notification is dequeued to the
// moment Claim returns holding the monitor. ns/op is the full
// publish-deliver-claim round trip; the reported p50/p99/p999 metrics
// are the claim interval alone, so the tail of the monitor re-entry
// (lock handoff plus Mesa re-validation) is visible separately from the
// mean. The fan-out axis shows how the claim tail grows with the number
// of concurrently armed handles on the monitor:
//
//	go test -bench 'WakeToClaim' -benchtime 2s
func BenchmarkWakeToClaim(b *testing.B) {
	for _, waiters := range []int{16, 256} {
		waiters := waiters
		b.Run(fmt.Sprintf("waiters=%d", waiters), func(b *testing.B) {
			var hist stats.Histogram
			b.ResetTimer()
			h := benchWakeToClaim(waiters, b.N)
			b.StopTimer()
			hist.Merge(&h)
			if hist.Count() != uint64(b.N) {
				b.Fatalf("recorded %d observations, want %d", hist.Count(), b.N)
			}
			b.ReportMetric(float64(hist.P50()), "p50-ns")
			b.ReportMetric(float64(hist.P99()), "p99-ns")
			b.ReportMetric(float64(hist.P999()), "p999-ns")
		})
	}
}

// BenchmarkAblationTagKinds isolates the relay search cost by predicate
// shape: an equivalence-taggable predicate (hash probe), a threshold-
// taggable one (heap root), and an untaggable one (exhaustive scan).
func BenchmarkAblationTagKinds(b *testing.B) {
	shapes := []struct{ name, pred string }{
		{"equivalence", "x == k"},
		{"threshold", "x >= k"},
		{"none", "x * x >= k"},
	}
	for _, sh := range shapes {
		sh := sh
		b.Run(sh.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchTagShape(b, sh.pred)
			}
		})
	}
}

// BenchmarkAblationInactiveList compares predicate-cache settings on the
// parameterized buffer, whose 128 batch predicates recur constantly.
func BenchmarkAblationInactiveList(b *testing.B) {
	for _, limit := range []int{0, 128} {
		limit := limit
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			var regs, reuses float64
			for i := 0; i < b.N; i++ {
				r := benchParamBBLimit(limit)
				regs += float64(r.Stats.Registrations)
				reuses += float64(r.Stats.Reuses)
			}
			b.ReportMetric(regs/float64(b.N), "registrations/run")
			b.ReportMetric(reuses/float64(b.N), "reuses/run")
		})
	}
}
